"""Recursive-descent SQL/PL parser.

Grammar covers everything the paper's smart contracts (Appendix A), the
system contracts (section 3.7), and the provenance queries (Table 3) need:
full SELECT with joins / aggregates / GROUP BY / HAVING / ORDER BY / LIMIT,
DML, DDL, CREATE FUNCTION with $$-quoted bodies, and a PL/pgSQL-like
procedural subset (DECLARE, assignments, IF/ELSIF/ELSE, SELECT INTO,
PERFORM, RAISE, RETURN).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import (
    AsOfClause,
    Between, BinaryOp, CaseExpr, ColumnDefNode, ColumnRef, CreateFunction,
    CreateIndex, CreateTable, Delete, DropFunction, DropTable, Explain, Expr,
    FunctionCall, InList, Insert, IntervalLiteral, IsNull, Join, Like,
    Literal, OrderItem, Param, PLAssign, PLBlock, PLIf, PLPerform, PLRaise,
    PLReturn, Select, SelectItem, SetClause, Star, Statement, SubqueryExpr,
    TableRef, UnaryOp, Update,
)
from repro.sql.lexer import Token, tokenize

_AGGREGATES = {"count", "sum", "avg", "min", "max"}

# Keywords that may double as column/variable names (or function names)
# in expressions.
_SOFT_IDENT_KEYWORDS = {"KEY", "INDEX", "CHECK", "LANGUAGE", "NOTICE",
                        "REPLACE", "OF", "BLOCK", "LATEST"}

_TYPE_KEYWORDS = {
    "INT", "INTEGER", "BIGINT", "FLOAT", "DOUBLE", "NUMERIC", "DECIMAL",
    "TEXT", "VARCHAR", "CHAR", "BOOLEAN", "TIMESTAMP", "SERIAL",
}

_INTERVAL_UNITS = {
    "second": 1.0, "seconds": 1.0, "minute": 60.0, "minutes": 60.0,
    "hour": 3600.0, "hours": 3600.0, "day": 86400.0, "days": 86400.0,
    "week": 604800.0, "weeks": 604800.0,
}


class Parser:
    """One-statement-at-a-time recursive descent parser."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def error(self, message: str) -> SQLSyntaxError:
        tok = self.current
        return SQLSyntaxError(
            f"line {tok.line}: {message} (near {tok.value!r})",
            position=tok.position, line=tok.line)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "EOF":
            self.index += 1
        return tok

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.current
        return tok.kind == kind and (value is None or tok.value == value)

    def check_kw(self, *keywords: str) -> bool:
        tok = self.current
        return tok.kind == "KEYWORD" and tok.value in keywords

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def accept_kw(self, *keywords: str) -> Optional[Token]:
        if self.check_kw(*keywords):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            raise self.error(f"expected {value or kind}")
        return self.advance()

    def expect_kw(self, keyword: str) -> Token:
        if not self.check_kw(keyword):
            raise self.error(f"expected {keyword}")
        return self.advance()

    def expect_ident(self) -> str:
        tok = self.current
        if tok.kind == "IDENT":
            return self.advance().value
        # Non-reserved usage of soft keywords as identifiers.
        if tok.kind == "KEYWORD" and tok.value in {
                "KEY", "INDEX", "CHECK", "LANGUAGE", "END", "NOTICE",
                "COUNT", "SUM", "AVG", "MIN", "MAX", "TIMESTAMP",
                "OF", "BLOCK", "LATEST"}:
            return self.advance().value.lower()
        raise self.error("expected identifier")

    def _as_of_ahead(self) -> bool:
        """True when the next tokens start the time-travel clause:
        ``AS OF BLOCK`` or ``AS OF LATEST``.  Requiring the full head
        keeps ``of``/``block``/``latest`` usable as ordinary aliases
        (``SELECT v AS of FROM t`` still parses as an alias)."""
        if not self.check_kw("AS") or self.index + 2 >= len(self.tokens):
            return False
        second = self.tokens[self.index + 1]
        third = self.tokens[self.index + 2]
        return (second.kind == "KEYWORD" and second.value == "OF"
                and third.kind == "KEYWORD"
                and third.value in ("BLOCK", "LATEST"))

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_statements(self) -> List[Statement]:
        """Parse a ;-separated list of statements."""
        statements: List[Statement] = []
        while not self.check("EOF"):
            while self.accept("PUNCT", ";"):
                pass
            if self.check("EOF"):
                break
            statements.append(self.parse_statement())
            if not self.check("EOF"):
                self.expect("PUNCT", ";")
        return statements

    def parse_statement(self) -> Statement:
        if self.check_kw("EXPLAIN"):
            self.advance()
            # ANALYZE is a soft identifier (not a reserved keyword): no
            # statement can start with a bare identifier, so consuming
            # it here is unambiguous.
            analyze = False
            if self.current.kind == "IDENT" and \
                    self.current.value.upper() == "ANALYZE":
                self.advance()
                analyze = True
            return Explain(statement=self.parse_statement(),
                           analyze=analyze)
        if self.check_kw("PROVENANCE"):
            self.advance()
            select = self.parse_select()
            select.provenance = True
            return select
        if self.check_kw("SELECT"):
            return self.parse_select()
        if self.check_kw("INSERT"):
            return self.parse_insert()
        if self.check_kw("UPDATE"):
            return self.parse_update()
        if self.check_kw("DELETE"):
            return self.parse_delete()
        if self.check_kw("CREATE"):
            return self.parse_create()
        if self.check_kw("DROP"):
            return self.parse_drop()
        raise self.error("expected a statement")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def parse_select(self) -> Select:
        self.expect_kw("SELECT")
        distinct = bool(self.accept_kw("DISTINCT"))
        if self.accept_kw("ALL"):
            pass
        items = [self.parse_select_item()]
        while self.accept("PUNCT", ","):
            items.append(self.parse_select_item())

        into_vars: List[str] = []
        if self.accept_kw("INTO"):
            into_vars.append(self.expect_ident())
            while self.accept("PUNCT", ","):
                into_vars.append(self.expect_ident())

        select = Select(items=items, distinct=distinct, into_vars=into_vars)
        if self.accept_kw("FROM"):
            select.from_table = self.parse_table_ref()
            while True:
                join = self.parse_join_opt()
                if join is None:
                    break
                select.joins.append(join)
        if self.accept_kw("WHERE"):
            select.where = self.parse_expr()
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            select.group_by.append(self.parse_expr())
            while self.accept("PUNCT", ","):
                select.group_by.append(self.parse_expr())
        if self.accept_kw("HAVING"):
            select.having = self.parse_expr()
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            select.order_by.append(self.parse_order_item())
            while self.accept("PUNCT", ","):
                select.order_by.append(self.parse_order_item())
        if self.accept_kw("LIMIT"):
            select.limit = self.parse_expr()
        if self.accept_kw("OFFSET"):
            select.offset = self.parse_expr()
        if self._as_of_ahead():
            self.advance()  # AS
            self.advance()  # OF
            if self.accept_kw("LATEST"):
                select.as_of = AsOfClause(latest=True)
            else:
                self.expect_kw("BLOCK")
                select.as_of = AsOfClause(block=self.parse_expr())
        return select

    def parse_select_item(self) -> SelectItem:
        if self.check("OP", "*"):
            self.advance()
            return SelectItem(expr=Star())
        # t.* form
        if (self.check("IDENT") and self.index + 2 < len(self.tokens)
                and self.tokens[self.index + 1].kind == "PUNCT"
                and self.tokens[self.index + 1].value == "."
                and self.tokens[self.index + 2].kind == "OP"
                and self.tokens[self.index + 2].value == "*"):
            table = self.advance().value
            self.advance()  # .
            self.advance()  # *
            return SelectItem(expr=Star(table=table))
        expr = self.parse_expr()
        alias = None
        if not self._as_of_ahead() and self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.check("IDENT") or self._bare_alias_keyword():
            alias = self._accept_alias()
        return SelectItem(expr=expr, alias=alias)

    def _bare_alias_keyword(self) -> bool:
        """OF/BLOCK/LATEST were identifiers before the time-travel
        grammar; keep accepting them as bare aliases (the clause always
        starts with AS, so there is no ambiguity here)."""
        return self.check_kw("OF", "BLOCK", "LATEST")

    def _accept_alias(self) -> str:
        tok = self.advance()
        return tok.value.lower() if tok.kind == "KEYWORD" else tok.value

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = name
        if not self._as_of_ahead() and self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.check("IDENT") or self._bare_alias_keyword():
            alias = self._accept_alias()
        return TableRef(name=name, alias=alias)

    def parse_join_opt(self) -> Optional[Join]:
        if self.accept("PUNCT", ","):
            return Join(kind="CROSS", table=self.parse_table_ref())
        if self.accept_kw("CROSS"):
            self.expect_kw("JOIN")
            return Join(kind="CROSS", table=self.parse_table_ref())
        kind = None
        if self.check_kw("INNER"):
            self.advance()
            kind = "INNER"
        elif self.check_kw("LEFT"):
            self.advance()
            self.accept_kw("OUTER")
            kind = "LEFT"
        elif self.check_kw("JOIN"):
            kind = "INNER"
        if kind is None:
            return None
        self.expect_kw("JOIN")
        table = self.parse_table_ref()
        on = None
        if self.accept_kw("ON"):
            on = self.parse_expr()
        elif kind != "CROSS":
            raise self.error("JOIN requires ON clause")
        return Join(kind=kind, table=table, on=on)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_kw("DESC"):
            ascending = False
        else:
            self.accept_kw("ASC")
        return OrderItem(expr=expr, ascending=ascending)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def parse_insert(self) -> Insert:
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.expect_ident()
        columns: List[str] = []
        if self.accept("PUNCT", "("):
            columns.append(self.expect_ident())
            while self.accept("PUNCT", ","):
                columns.append(self.expect_ident())
            self.expect("PUNCT", ")")
        if self.check_kw("SELECT"):
            return Insert(table=table, columns=columns,
                          select=self.parse_select())
        self.expect_kw("VALUES")
        rows: List[List[Expr]] = []
        while True:
            self.expect("PUNCT", "(")
            row = [self.parse_expr()]
            while self.accept("PUNCT", ","):
                row.append(self.parse_expr())
            self.expect("PUNCT", ")")
            rows.append(row)
            if not self.accept("PUNCT", ","):
                break
        return Insert(table=table, columns=columns, rows=rows)

    def parse_update(self) -> Update:
        self.expect_kw("UPDATE")
        table = self.expect_ident()
        self.expect_kw("SET")
        sets = [self.parse_set_clause()]
        while self.accept("PUNCT", ","):
            sets.append(self.parse_set_clause())
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expr()
        return Update(table=table, sets=sets, where=where)

    def parse_set_clause(self) -> SetClause:
        column = self.expect_ident()
        self.expect("OP", "=")
        return SetClause(column=column, value=self.parse_expr())

    def parse_delete(self) -> Delete:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.expect_ident()
        where = None
        if self.accept_kw("WHERE"):
            where = self.parse_expr()
        return Delete(table=table, where=where)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def parse_create(self) -> Statement:
        self.expect_kw("CREATE")
        or_replace = False
        if self.accept_kw("OR"):
            self.expect_kw("REPLACE")
            or_replace = True
        if self.accept_kw("TABLE"):
            return self.parse_create_table()
        unique = bool(self.accept_kw("UNIQUE"))
        if self.accept_kw("INDEX"):
            return self.parse_create_index(unique)
        if self.accept_kw("FUNCTION"):
            return self.parse_create_function(or_replace)
        raise self.error("expected TABLE, INDEX or FUNCTION")

    def _accept_if_not_exists(self) -> bool:
        if self.check_kw("IF"):
            self.advance()
            self.expect_kw("NOT")
            if not (self.check("IDENT") and
                    self.current.value.upper() == "EXISTS") \
                    and not self.check_kw("EXISTS"):
                raise self.error("expected EXISTS")
            self.advance()
            return True
        return False

    def parse_create_table(self) -> CreateTable:
        if_not_exists = self._accept_if_not_exists()
        name = self.expect_ident()
        self.expect("PUNCT", "(")
        columns: List[ColumnDefNode] = []
        primary_key: List[str] = []
        checks: List[Expr] = []
        while True:
            if self.check_kw("PRIMARY"):
                self.advance()
                self.expect_kw("KEY")
                self.expect("PUNCT", "(")
                primary_key.append(self.expect_ident())
                while self.accept("PUNCT", ","):
                    primary_key.append(self.expect_ident())
                self.expect("PUNCT", ")")
            elif self.check_kw("CHECK"):
                self.advance()
                self.expect("PUNCT", "(")
                checks.append(self.parse_expr())
                self.expect("PUNCT", ")")
            else:
                columns.append(self.parse_column_def())
            if not self.accept("PUNCT", ","):
                break
        self.expect("PUNCT", ")")
        for col in columns:
            if col.primary_key:
                primary_key.append(col.name)
        return CreateTable(name=name, columns=columns,
                           primary_key=primary_key, checks=checks,
                           if_not_exists=if_not_exists)

    def parse_type_name(self) -> str:
        tok = self.current
        if tok.kind == "KEYWORD" and tok.value in _TYPE_KEYWORDS:
            self.advance()
            name = tok.value
            if name == "DOUBLE":
                self.accept_kw("PRECISION")
                name = "FLOAT"
            if name in {"VARCHAR", "CHAR", "NUMERIC", "DECIMAL"}:
                if self.accept("PUNCT", "("):
                    self.expect("NUMBER")
                    if self.accept("PUNCT", ","):
                        self.expect("NUMBER")
                    self.expect("PUNCT", ")")
            return name
        if tok.kind == "IDENT" and tok.value.lower() in {"void", "int4",
                                                         "int8", "real"}:
            self.advance()
            return tok.value.upper()
        raise self.error("expected a type name")

    def parse_column_def(self) -> ColumnDefNode:
        name = self.expect_ident()
        type_name = self.parse_type_name()
        col = ColumnDefNode(name=name, type_name=type_name)
        while True:
            if self.accept_kw("NOT"):
                self.expect_kw("NULL")
                col.not_null = True
            elif self.accept_kw("NULL"):
                pass
            elif self.check_kw("PRIMARY"):
                self.advance()
                self.expect_kw("KEY")
                col.primary_key = True
                col.not_null = True
            elif self.accept_kw("UNIQUE"):
                col.unique = True
            elif self.accept_kw("DEFAULT"):
                col.default = self.parse_expr()
            elif self.accept_kw("CHECK"):
                self.expect("PUNCT", "(")
                col.check = self.parse_expr()
                self.expect("PUNCT", ")")
            else:
                break
        return col

    def parse_create_index(self, unique: bool) -> CreateIndex:
        if_not_exists = self._accept_if_not_exists()
        name = self.expect_ident()
        self.expect_kw("ON")
        table = self.expect_ident()
        self.expect("PUNCT", "(")
        columns = [self.expect_ident()]
        while self.accept("PUNCT", ","):
            columns.append(self.expect_ident())
        self.expect("PUNCT", ")")
        return CreateIndex(name=name, table=table, columns=columns,
                           unique=unique, if_not_exists=if_not_exists)

    def parse_create_function(self, or_replace: bool) -> CreateFunction:
        name = self.expect_ident()
        self.expect("PUNCT", "(")
        params: List[Tuple[str, str]] = []
        if not self.check("PUNCT", ")"):
            while True:
                pname = self.expect_ident()
                ptype = self.parse_type_name()
                params.append((pname, ptype))
                if not self.accept("PUNCT", ","):
                    break
        self.expect("PUNCT", ")")
        returns = "VOID"
        if self.accept_kw("RETURNS"):
            returns = self.parse_type_name()
        self.expect_kw("AS")
        body_tok = self.expect("STRING")
        if self.accept_kw("LANGUAGE"):
            self.expect_ident()
        return CreateFunction(name=name, params=params, returns=returns,
                              body=body_tok.value, or_replace=or_replace)

    def parse_drop(self) -> Statement:
        self.expect_kw("DROP")
        if self.accept_kw("TABLE"):
            name = self.expect_ident()
            return DropTable(name=name)
        if self.accept_kw("FUNCTION"):
            name = self.expect_ident()
            if self.accept("PUNCT", "("):
                # Ignore the signature in DROP FUNCTION name(type, ...)
                depth = 1
                while depth:
                    tok = self.advance()
                    if tok.kind == "EOF":
                        raise self.error("unterminated DROP FUNCTION args")
                    if tok.kind == "PUNCT" and tok.value == "(":
                        depth += 1
                    elif tok.kind == "PUNCT" and tok.value == ")":
                        depth -= 1
            return DropFunction(name=name)
        raise self.error("expected TABLE or FUNCTION")

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_kw("OR"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_kw("AND"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_kw("NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        while True:
            if self.check("OP") and self.current.value in {
                    "=", "<>", "!=", "<", "<=", ">", ">="}:
                op = self.advance().value
                if op == "!=":
                    op = "<>"
                left = BinaryOp(op, left, self.parse_additive())
                continue
            if self.check_kw("IS"):
                self.advance()
                negated = bool(self.accept_kw("NOT"))
                self.expect_kw("NULL")
                left = IsNull(left, negated=negated)
                continue
            negated = False
            if self.check_kw("NOT") and self.tokens[self.index + 1].kind == \
                    "KEYWORD" and self.tokens[self.index + 1].value in {
                    "BETWEEN", "IN", "LIKE"}:
                self.advance()
                negated = True
            if self.accept_kw("BETWEEN"):
                low = self.parse_additive()
                self.expect_kw("AND")
                high = self.parse_additive()
                left = Between(left, low, high, negated=negated)
                continue
            if self.accept_kw("IN"):
                self.expect("PUNCT", "(")
                if self.check_kw("SELECT"):
                    sub = self.parse_select()
                    self.expect("PUNCT", ")")
                    left = BinaryOp("IN_SUBQUERY", left,
                                    SubqueryExpr(sub))
                else:
                    items = [self.parse_expr()]
                    while self.accept("PUNCT", ","):
                        items.append(self.parse_expr())
                    self.expect("PUNCT", ")")
                    left = InList(left, items, negated=negated)
                continue
            if self.accept_kw("LIKE"):
                left = Like(left, self.parse_additive(), negated=negated)
                continue
            if negated:
                raise self.error("expected BETWEEN, IN or LIKE after NOT")
            break
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.check("OP") and self.current.value in {"+", "-", "||"}:
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.check("OP") and self.current.value in {"*", "/", "%"}:
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.check("OP") and self.current.value in {"-", "+"}:
            op = self.advance().value
            return UnaryOp(op, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.check("OP", "::"):  # cast — keep the operand type-light
            self.advance()
            self.parse_type_name()
        return expr

    def parse_primary(self) -> Expr:
        tok = self.current
        if tok.kind == "NUMBER":
            self.advance()
            text = tok.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if tok.kind == "STRING":
            self.advance()
            return Literal(tok.value)
        if tok.kind == "PARAM":
            self.advance()
            return Param(tok.value)
        if tok.kind == "KEYWORD":
            if tok.value in {"TRUE", "FALSE"}:
                self.advance()
                return Literal(tok.value == "TRUE")
            if tok.value == "NULL":
                self.advance()
                return Literal(None)
            if tok.value == "NOW":
                self.advance()
                self.expect("PUNCT", "(")
                self.expect("PUNCT", ")")
                return FunctionCall(name="now")
            if tok.value == "INTERVAL":
                self.advance()
                text_tok = self.expect("STRING")
                return self._interval_from_text(text_tok.value)
            if tok.value == "CASE":
                return self.parse_case()
            if tok.value in {"COUNT", "SUM", "AVG", "MIN", "MAX"}:
                self.advance()
                return self.parse_function_call(tok.value.lower())
            if tok.value == "EXISTS":
                self.advance()
                self.expect("PUNCT", "(")
                sub = self.parse_select()
                self.expect("PUNCT", ")")
                return SubqueryExpr(sub, exists=True)
            if tok.value == "SELECT":
                sub = self.parse_select()
                return SubqueryExpr(sub)
        if tok.kind == "PUNCT" and tok.value == "(":
            self.advance()
            if self.check_kw("SELECT"):
                sub = self.parse_select()
                self.expect("PUNCT", ")")
                return SubqueryExpr(sub)
            expr = self.parse_expr()
            self.expect("PUNCT", ")")
            return expr
        if tok.kind == "IDENT" or (tok.kind == "KEYWORD"
                                   and tok.value in _SOFT_IDENT_KEYWORDS):
            raw = self.advance().value
            name = raw.lower() if tok.kind == "KEYWORD" else raw
            if self.check("PUNCT", "("):
                return self.parse_function_call(name.lower())
            if self.accept("PUNCT", "."):
                if self.check("OP", "*"):
                    self.advance()
                    return Star(table=name)
                column = self.expect_ident()
                return ColumnRef(name=column, table=name)
            return ColumnRef(name=name)
        raise self.error("expected an expression")

    def _interval_from_text(self, text: str) -> IntervalLiteral:
        parts = text.strip().split()
        if len(parts) != 2:
            raise self.error(f"cannot parse interval {text!r}")
        try:
            qty = float(parts[0])
        except ValueError:
            raise self.error(f"cannot parse interval {text!r}") from None
        unit = parts[1].lower()
        if unit not in _INTERVAL_UNITS:
            raise self.error(f"unknown interval unit {parts[1]!r}")
        return IntervalLiteral(seconds=qty * _INTERVAL_UNITS[unit], text=text)

    def parse_function_call(self, name: str) -> FunctionCall:
        self.expect("PUNCT", "(")
        call = FunctionCall(name=name)
        if self.check("OP", "*"):
            self.advance()
            call.star = True
            self.expect("PUNCT", ")")
            return call
        if self.accept_kw("DISTINCT"):
            call.distinct = True
        if not self.check("PUNCT", ")"):
            call.args.append(self.parse_expr())
            while self.accept("PUNCT", ","):
                call.args.append(self.parse_expr())
        self.expect("PUNCT", ")")
        return call

    def parse_case(self) -> CaseExpr:
        self.expect_kw("CASE")
        whens: List[Tuple[Expr, Expr]] = []
        while self.accept_kw("WHEN"):
            cond = self.parse_expr()
            self.expect_kw("THEN")
            whens.append((cond, self.parse_expr()))
        else_ = None
        if self.accept_kw("ELSE"):
            else_ = self.parse_expr()
        self.expect_kw("END")
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        return CaseExpr(whens=whens, else_=else_)

    # ------------------------------------------------------------------
    # PL bodies (smart-contract procedures)
    # ------------------------------------------------------------------

    def parse_pl_block(self) -> PLBlock:
        declarations: List[Tuple[str, str, Optional[Expr]]] = []
        if self.accept_kw("DECLARE"):
            while not self.check_kw("BEGIN"):
                name = self.expect_ident()
                type_name = self.parse_type_name()
                init: Optional[Expr] = None
                if self.check("OP", "="):
                    self.advance()
                    init = self.parse_expr()
                self.expect("PUNCT", ";")
                declarations.append((name, type_name, init))
        self.expect_kw("BEGIN")
        statements = self.parse_pl_statements(end_keywords=("END",))
        self.expect_kw("END")
        self.accept("PUNCT", ";")
        return PLBlock(declarations=declarations, statements=statements)

    def parse_pl_statements(self, end_keywords) -> List[Statement]:
        statements: List[Statement] = []
        while not self.check_kw(*end_keywords) and not self.check("EOF"):
            statements.append(self.parse_pl_statement())
        return statements

    def parse_pl_statement(self) -> Statement:
        if self.check_kw("IF"):
            return self.parse_pl_if()
        if self.check_kw("RAISE"):
            self.advance()
            level = "EXCEPTION"
            if self.accept_kw("NOTICE"):
                level = "NOTICE"
            else:
                self.accept_kw("EXCEPTION")
            message = self.parse_expr()
            self.expect("PUNCT", ";")
            return PLRaise(level=level, message=message)
        if self.check_kw("RETURN"):
            self.advance()
            value = None
            if not self.check("PUNCT", ";"):
                value = self.parse_expr()
            self.expect("PUNCT", ";")
            return PLReturn(value=value)
        if self.check_kw("PERFORM"):
            self.advance()
            # PERFORM behaves like SELECT without the keyword.
            saved = self.index
            self.tokens.insert(saved, Token("KEYWORD", "SELECT", 0, 0))
            select = self.parse_select()
            self.expect("PUNCT", ";")
            return PLPerform(select=select)
        if self.check_kw("SELECT", "INSERT", "UPDATE", "DELETE", "CREATE",
                         "DROP", "PROVENANCE"):
            stmt = self.parse_statement()
            self.expect("PUNCT", ";")
            return stmt
        # assignment: ident = expr ;  (PL/pgSQL uses :=, we accept = too)
        if self.check("IDENT"):
            name = self.advance().value
            if self.check("OP", "::"):  # var := expr written as var ::= ?
                raise self.error("unsupported operator in assignment")
            self.expect("OP", "=")
            value = self.parse_expr()
            self.expect("PUNCT", ";")
            return PLAssign(name=name, value=value)
        raise self.error("expected a procedural statement")

    def parse_pl_if(self) -> PLIf:
        self.expect_kw("IF")
        branches: List[Tuple[Expr, List[Statement]]] = []
        cond = self.parse_expr()
        self.expect_kw("THEN")
        body = self.parse_pl_statements(("ELSIF", "ELSE", "END"))
        branches.append((cond, body))
        while self.accept_kw("ELSIF"):
            cond = self.parse_expr()
            self.expect_kw("THEN")
            branches.append(
                (cond, self.parse_pl_statements(("ELSIF", "ELSE", "END"))))
        else_body: List[Statement] = []
        if self.accept_kw("ELSE"):
            else_body = self.parse_pl_statements(("END",))
        self.expect_kw("END")
        self.expect_kw("IF")
        self.expect("PUNCT", ";")
        return PLIf(branches=branches, else_body=else_body)


# ---------------------------------------------------------------------------
# Parse cache — SQL text → shared parse tree
# ---------------------------------------------------------------------------
#
# Stored procedures and re-executed transactions replay the same statement
# text on every replica; re-lexing and re-parsing per execution is pure
# overhead.  The cache hands out the *same* AST objects each time — safe
# because the tree is immutable after parsing (the planner resolves ORDER
# BY aliases into a side list precisely so no pass mutates it), and
# required for the statement fast path: plan-cache fingerprints and
# compiled-expression memos attach to the node objects.

_PARSE_CACHE: "OrderedDict[str, Tuple[Statement, ...]]" = OrderedDict()
_PARSE_CACHE_LOCK = threading.Lock()
PARSE_CACHE_CAPACITY = 512


def clear_parse_cache() -> None:
    """Drop every cached parse tree (benchmarks measuring cold runs)."""
    with _PARSE_CACHE_LOCK:
        _PARSE_CACHE.clear()


def parse_sql(text: str, use_cache: bool = True) -> List[Statement]:
    """Parse a ;-separated SQL script (memoized on the exact text)."""
    if use_cache:
        with _PARSE_CACHE_LOCK:
            cached = _PARSE_CACHE.get(text)
            if cached is not None:
                _PARSE_CACHE.move_to_end(text)
                return list(cached)
    statements = Parser(text).parse_statements()
    if use_cache:
        with _PARSE_CACHE_LOCK:
            _PARSE_CACHE[text] = tuple(statements)
            _PARSE_CACHE.move_to_end(text)
            while len(_PARSE_CACHE) > PARSE_CACHE_CAPACITY:
                _PARSE_CACHE.popitem(last=False)
    return statements


def parse_one(text: str) -> Statement:
    """Parse exactly one statement."""
    statements = parse_sql(text)
    if len(statements) != 1:
        raise SQLSyntaxError(
            f"expected exactly one statement, got {len(statements)}")
    return statements[0]


_BODY_CACHE: Dict[str, PLBlock] = {}
_BODY_CACHE_LOCK = threading.Lock()


def parse_procedure_body(text: str) -> PLBlock:
    """Parse a PL body (DECLARE ... BEGIN ... END).

    Memoized: every node of a network deploys the same contract text, and
    the shared tree lets compiled-expression memos amortize across nodes.
    """
    with _BODY_CACHE_LOCK:
        cached = _BODY_CACHE.get(text)
    if cached is not None:
        return cached
    parser = Parser(text)
    block = parser.parse_pl_block()
    if not parser.check("EOF"):
        raise parser.error("trailing tokens after END")
    with _BODY_CACHE_LOCK:
        if len(_BODY_CACHE) > PARSE_CACHE_CAPACITY:
            _BODY_CACHE.clear()
        _BODY_CACHE[text] = block
    return block
