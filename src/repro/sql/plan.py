"""Physical query plan: Volcano-style operators.

The planner (:mod:`repro.sql.planner`) turns a parsed statement into a tree
of these operators; each node implements ``rows(rt)`` returning an iterator
so upper operators stream instead of materializing intermediate lists
(scans still materialize-and-sort their own output — cross-node
determinism requires folding rows in a content-defined order).

SSI semantics live in the scan layer here, byte-for-byte as the old
monolithic executor did them:

* **SIREAD recording** — every scan records a :class:`PredicateRead`
  (index range or whole-table) and every visible row read;
* **EO missing-index abort** — under ``tx.require_index`` a scan that no
  index can serve raises :class:`MissingIndexError` (paper section 4.3);
* **phantom / stale-window checks** — scans running below the node's
  committed height inspect the window over their *candidate* versions and
  abort on the section 3.4.1 rules.

Join operators therefore never bypass ``execute_scan``: a
:class:`NestedLoopJoin` re-derives index bounds per outer row (recording
narrow per-probe predicate reads, exactly like the old executor), while a
:class:`HashJoin` scans its build side once (recording that scan's — wider
but conservative — predicate read).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    CatalogError,
    ExecutionError,
    MissingIndexError,
    SQLError,
    TypeMismatchError,
)
from repro.mvcc.transaction import PredicateRead, TransactionContext
from repro.sql import functions
from repro.sql.ast_nodes import (
    Between, BinaryOp, CaseExpr, ColumnRef, Expr, FunctionCall, InList,
    IntervalLiteral, IsNull, Join, Like, Literal, OrderItem, Param,
    SelectItem, Star, SubqueryExpr, UnaryOp,
)
from repro.sql.expressions import (
    Binder,
    EvalContext,
    compare_values,
    compile_expr,
    compile_predicate,
    evaluate,
    evaluate_predicate,
    expr_fingerprint,
)
from repro.storage.index import Index, normalize_key, normalize_key_part
from repro.storage.row import RowVersion
from repro.storage.snapshot import BlockSnapshot
from repro.storage.visibility import (
    version_committed_in_window,
    version_deleted_in_window,
    version_visible,
)

PROVENANCE_COLUMNS = ("xmin", "xmax", "creator", "deleter", "row_id")

Env = Dict[str, Dict[str, Any]]


@dataclass
class ScanRow:
    """One visible row produced by a scan (version kept for DML)."""

    values: Dict[str, Any]
    version: Optional[RowVersion]


@dataclass
class Runtime:
    """Everything an operator needs at execution time."""

    db: Any                                  # repro.mvcc.database.Database
    tx: TransactionContext
    ctx: EvalContext
    alias_columns: Dict[str, Sequence[str]]  # binder output
    check_read: Callable[[str], None] = lambda table: None
    # {id(scan node): bounds} computed by plan-cache guard validation for
    # this execution; scans fall back to extracting their own bounds.
    scan_bounds: Optional[Dict[int, Dict[str, Dict[str, Any]]]] = None
    # {id(scan node): prepared state} for index-order scans: the SSI
    # side effects (predicate read, window checks) happen once at
    # preparation even when a streaming Limit consumes zero rows.
    prepared_scans: Optional[Dict[int, Any]] = None
    # EXPLAIN ANALYZE only: {id(plan node): OpStats}.  A DynamicProbe
    # never runs its own ``rows`` (NestedLoopJoin drives it per outer
    # row), so the join reports the probe's actuals through this map.
    # Strictly write-only — nothing on the planning or commit path ever
    # reads it back.
    probe_stats: Optional[Dict[int, "OpStats"]] = None


# ---------------------------------------------------------------------------
# Sargable-bound extraction (shared by the planner and dynamic probes)
# ---------------------------------------------------------------------------

def conjuncts(expr: Expr) -> List[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def try_eval_const(expr: Expr, ctx: EvalContext) -> Tuple[bool, Any]:
    """Evaluate ``expr`` if it does not depend on the scanned row."""
    for node in expr.walk():
        if isinstance(node, Star):
            return False, None
        if isinstance(node, FunctionCall) and \
                node.name in functions.AGGREGATE_NAMES:
            return False, None
        if isinstance(node, SubqueryExpr):
            return False, None
        if isinstance(node, ColumnRef):
            # Resolvable only via outer env or variables.
            try:
                evaluate(node, ctx)
            except SQLError:
                return False, None
    try:
        return True, evaluate(expr, ctx)
    except SQLError:
        return False, None


def column_of_alias(expr: Expr, alias: str,
                    table_columns: Sequence[str]) -> Optional[str]:
    if not isinstance(expr, ColumnRef):
        return None
    if expr.table is not None and expr.table != alias:
        return None
    if expr.table is None and expr.name not in table_columns:
        return None
    return expr.name


def extract_bounds(where: Optional[Expr], alias: str, ctx: EvalContext,
                   alias_columns: Dict[str, Sequence[str]],
                   sources: Optional[Dict[str, List[Expr]]] = None
                   ) -> Dict[str, Dict[str, Any]]:
    """Extract per-column bounds from AND-ed conjuncts of ``where`` that
    constrain columns of ``alias`` against values computable without the
    row (literals, params, PL variables, outer-row columns).

    Returns ``{column: {"eq": v} | {"low": (v, incl), "high": (v, incl)}}``.
    ``sources``, when given, collects the conjunct expressions that
    produced each column's bounds (for EXPLAIN rendering).
    """
    bounds: Dict[str, Dict[str, Any]] = {}
    if where is None:
        return bounds
    for conjunct in conjuncts(where):
        _extract_bound(conjunct, alias, ctx, alias_columns, bounds, sources)
    return bounds


def _note_source(sources: Optional[Dict[str, List[Expr]]], col: str,
                 conjunct: Expr) -> None:
    if sources is not None:
        sources.setdefault(col, []).append(conjunct)


def _extract_bound(conjunct: Expr, alias: str, ctx: EvalContext,
                   alias_columns: Dict[str, Sequence[str]],
                   bounds: Dict[str, Dict[str, Any]],
                   sources: Optional[Dict[str, List[Expr]]] = None) -> None:
    schema_cols = alias_columns.get(alias, ())
    if isinstance(conjunct, BinaryOp) and conjunct.op in {
            "=", "<", "<=", ">", ">="}:
        col = column_of_alias(conjunct.left, alias, schema_cols)
        other = conjunct.right
        op = conjunct.op
        if col is None:
            col = column_of_alias(conjunct.right, alias, schema_cols)
            other = conjunct.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if col is None:
            return
        ok, value = try_eval_const(other, ctx)
        if not ok or value is None:
            return
        slot = bounds.setdefault(col, {})
        if op == "=":
            slot["eq"] = value
        elif op in {"<", "<="}:
            slot["high"] = (value, op == "<=")
        else:
            slot["low"] = (value, op == ">=")
        _note_source(sources, col, conjunct)
        return
    if isinstance(conjunct, Between) and not conjunct.negated:
        col = column_of_alias(conjunct.operand, alias, schema_cols)
        if col is None:
            return
        ok_low, low = try_eval_const(conjunct.low, ctx)
        ok_high, high = try_eval_const(conjunct.high, ctx)
        if ok_low and low is not None:
            bounds.setdefault(col, {})["low"] = (low, True)
            _note_source(sources, col, conjunct)
        if ok_high and high is not None:
            bounds.setdefault(col, {})["high"] = (high, True)
            _note_source(sources, col, conjunct)
        return
    if isinstance(conjunct, InList) and not conjunct.negated:
        # IN (a, b, c) is not a contiguous range; treat as a min/max
        # bound for index pruning (exact filtering happens later).
        col = column_of_alias(conjunct.operand, alias, schema_cols)
        if col is None:
            return
        values = []
        for item in conjunct.items:
            ok, value = try_eval_const(item, ctx)
            if not ok or value is None:
                return
            values.append(value)
        if values:
            try:
                bounds.setdefault(col, {})["low"] = (min(values), True)
                bounds.setdefault(col, {})["high"] = (max(values), True)
            except TypeError:
                return
            _note_source(sources, col, conjunct)


def rank_indexes(heap, slots: Dict[str, Dict[str, Any]]
                 ) -> Optional[Tuple[Index, int, bool]]:
    """Shared leading-column scoring (2 per equality column, 1 for a
    range on the next column): returns (index, n_eq, has_range) for the
    best index, or None.  ``slots`` only needs the bound *kinds*
    ("eq"/"low"/"high") to be present — both the value-carrying planner
    bounds and the planner's structural probe predictions use this, so
    predicted and executed index choice cannot diverge."""
    best = None
    best_score = 0
    for index in heap.indexes.values():
        n_eq = 0
        for col in index.columns:
            slot = slots.get(col)
            if slot and "eq" in slot:
                n_eq += 1
            else:
                break
        score = n_eq * 2
        has_range = False
        if n_eq < len(index.columns):
            slot = slots.get(index.columns[n_eq])
            if slot and ("low" in slot or "high" in slot):
                score += 1
                has_range = True
        if score > best_score:
            best_score = score
            best = (index, n_eq, has_range)
    return best


def scan_estimate(row_count: int, n_eq: int, has_range: bool,
                  unique_covered: bool,
                  eq_ndv: Optional[int] = None,
                  range_sel: Optional[float] = None) -> float:
    """Selectivity estimate over the snapshot-anchored committed row
    count.  Equality prefixes divide by the anchored distinct-key count
    of the bound columns when the caller supplies it (``eq_ndv``),
    falling back to the System-R 1/4 guess; ranges use the anchored
    histogram selectivity (``range_sel``) when the caller derived one,
    falling back to the classic 1/3.  (Lives here, beside the index
    scoring, so the plan cache can refresh estimates on cache hits
    without importing the planner.)"""
    base = float(max(row_count, 1))
    if unique_covered:
        return 1.0
    est = base
    if n_eq:
        if eq_ndv is not None:
            est = max(1.0, est / float(max(eq_ndv, 1)))
        else:
            est = max(1.0, est / 4.0)
    if has_range:
        if range_sel is not None:
            est = max(1.0, est * range_sel)
        else:
            est = max(1.0, est / 3.0)
    return est


def range_selectivity(db, table: str, column: Optional[str],
                      bounds: Optional[Dict[str, Dict[str, Any]]]
                      ) -> Optional[float]:
    """Histogram selectivity of the range slot on ``column`` within
    ``bounds`` (an ``extract_bounds`` result); None when the column is
    unknown, the slot is equality-shaped, or no histogram exists — the
    caller keeps the fixed 1/3 guess.  The histogram is anchored at the
    committed height, so the same bounds cost identically on every
    node."""
    if column is None or not bounds:
        return None
    slot = bounds.get(column)
    if not slot or "eq" in slot \
            or ("low" not in slot and "high" not in slot):
        return None
    return db.stats.range_selectivity(table, column, slot)


def _l2(x: float) -> float:
    """log₂ clamped away from zero — the cost model's loop factor."""
    import math

    return math.log2(max(float(x), 2.0))


# (n_eq, has_range, unique_covered, eq column names) — everything a scan
# needs to re-derive its row/cost estimates from anchored statistics.
CostSig = Tuple[int, bool, bool, Tuple[str, ...]]


def ordered_scan_sig(bounds: Dict[str, Dict[str, Any]],
                     order_column: str) -> CostSig:
    """CostSig of an index-order walk: only bounds on the leading
    (order) column narrow it."""
    slot = bounds.get(order_column, {})
    n_eq = 1 if "eq" in slot else 0
    has_range = n_eq == 0 and ("low" in slot or "high" in slot)
    return (n_eq, has_range, False, (order_column,) if n_eq else ())


def ordered_scan_estimates(db, table: str, cost_sig: CostSig,
                           range_column: Optional[str] = None,
                           bounds: Optional[Dict[str, Dict[str, Any]]]
                           = None) -> Tuple[float, float]:
    """(est_rows, est_cost) of an IndexOrderScan: index walk + matched
    rows, no content sort.  The single formula both the planner's
    candidate costing and :meth:`IndexOrderScan.recost` use — choosing
    and rendering must never disagree, so both call sites pass the same
    ``range_column``/``bounds`` (or neither)."""
    stats = db.stats.table_stats(table)
    n_eq, has_range, unique_covered, eq_cols = cost_sig
    ndv = db.stats.ndv(table, eq_cols) if eq_cols else None
    range_sel = None
    if has_range:
        range_sel = range_selectivity(db, table, range_column, bounds)
    est = scan_estimate(stats.row_count, n_eq, has_range,
                        unique_covered, eq_ndv=ndv, range_sel=range_sel)
    return est, _l2(stats.row_count) + est


@dataclass(frozen=True)
class PlanEstimate:
    """Lightweight (est_rows, est_cost) carrier so cost helpers like
    :func:`join_estimates` serve both real plan nodes and the planner's
    not-yet-constructed candidates."""

    est_rows: float
    est_cost: float


def choose_index(heap, bounds: Dict[str, Dict[str, Any]]
                 ) -> Optional[Tuple[Index, List[Any], Optional[Tuple],
                                     Optional[Tuple], bool, bool]]:
    """Pick the index binding the most leading columns.

    Returns (index, eq_prefix, low_key, high_key, low_incl, high_incl)
    or None.
    """
    best = rank_indexes(heap, bounds)
    if best is None:
        return None
    index, n_eq, has_range = best
    eq_prefix = [bounds[col]["eq"] for col in index.columns[:n_eq]]
    range_low = range_high = None
    low_incl = high_incl = True
    if has_range:
        slot = bounds.get(index.columns[n_eq], {})
        if "low" in slot:
            range_low, low_incl = slot["low"]
        if "high" in slot:
            range_high, high_incl = slot["high"]
    low_vals = list(eq_prefix)
    high_vals = list(eq_prefix)
    if range_low is not None:
        low_vals.append(range_low)
    if range_high is not None:
        high_vals.append(range_high)
    low_key = normalize_key(low_vals) if low_vals else None
    high_key = normalize_key(high_vals) if high_vals else None
    return (index, eq_prefix, low_key, high_key, low_incl, high_incl)


# ---------------------------------------------------------------------------
# The scan runtime — SSI hooks live here
# ---------------------------------------------------------------------------

def row_content_key(values: Dict[str, Any]) -> str:
    """Content-defined sort key shared by heap and columnar scans:
    physical version ids differ across nodes (aborted executions burn
    ids), and float aggregation is order-sensitive — sorting rows by
    content makes every node (and every store) fold identically."""
    return repr(sorted(values.items(), key=lambda kv: kv[0]))


def execute_scan(rt: Runtime, table_name: str, alias: str,
                 bounds: Dict[str, Dict[str, Any]]) -> List[ScanRow]:
    """Scan ``table_name`` returning visible rows, recording SIREAD
    state and running the EO-flow phantom/stale checks.

    Time-travel executions (``rt.ctx.as_of_height`` set) read the
    immutable state at that height instead: visibility pins to
    ``BlockSnapshot(height)`` and *no* SSI bookkeeping happens — no
    SIREAD recording, no phantom/stale window checks.  State at or
    below the committed height can never change, so there is nothing
    for SSI to validate against (the transaction is read-only by
    construction; the executor enforces that)."""
    rt.check_read(table_name)
    schema = rt.db.catalog.schema_of(table_name)
    heap = rt.db.catalog.heap_of(table_name)
    tx = rt.tx
    as_of = rt.ctx.as_of_height if not tx.provenance else None
    choice = choose_index(heap, bounds)

    if choice is not None:
        index, eq_prefix, low_key, high_key, low_incl, high_incl = choice
        depth = max(len(low_key or ()), len(high_key or ()), 1)
        candidate_ids = index._scan(low_key, high_key, low_incl,
                                    high_incl, depth)
        candidates = heap.resolve(candidate_ids)
        predicate = PredicateRead(
            table=table_name,
            columns=index.columns[:depth],
            low_key=low_key, high_key=high_key,
            low_inclusive=low_incl, high_inclusive=high_incl)
    else:
        if tx.require_index and not schema.system and not tx.provenance:
            raise MissingIndexError(
                f"no index supports the predicate on {table_name!r}; "
                f"the execute-order-in-parallel flow requires "
                f"index-backed predicate reads")
        candidates = heap.all_versions()
        predicate = PredicateRead(table=table_name, columns=())

    if as_of is None:
        tx.record_predicate_read(predicate)
        window_checks(rt, table_name, candidates)
        snapshot = tx.snapshot
        own_xid: Optional[int] = tx.xid
    else:
        snapshot = BlockSnapshot(as_of)
        own_xid = None  # pure committed-height semantics

    rows: List[ScanRow] = []
    for version in candidates:
        if tx.provenance:
            if not _provenance_visible(rt, version):
                continue
            values = dict(version.values)
            for key, val in version.provenance_header().items():
                values.setdefault(key, val)
            rows.append(ScanRow(values=values, version=version))
        else:
            if not version_visible(version, snapshot,
                                   rt.db.statuses, own_xid):
                continue
            if as_of is None:
                tx.record_row_read(table_name, version)
            rows.append(ScanRow(values=dict(version.values),
                                version=version))
    rows.sort(key=lambda r: row_content_key(r.values))
    return rows


def _provenance_visible(rt: Runtime, version: RowVersion) -> bool:
    """Provenance queries see every *committed* version, active or dead
    (section 4.2)."""
    return rt.db.statuses.is_committed(version.xmin)


def window_checks(rt: Runtime, table_name: str,
                  candidates: List[RowVersion]) -> None:
    """Paper section 3.4.1: when executing below the node's committed
    height, a predicate-matching row created (phantom) or deleted
    (stale) in the window aborts the transaction."""
    from repro.errors import SerializationFailure

    snapshot = rt.tx.snapshot
    if not isinstance(snapshot, BlockSnapshot) or rt.tx.provenance:
        return
    current = rt.db.committed_height
    if current <= snapshot.height:
        return
    for version in candidates:
        if version_committed_in_window(version, rt.db.statuses,
                                       snapshot.height, current):
            if version.deleter_block is None:
                raise SerializationFailure(
                    f"phantom read on {table_name!r}: row created at "
                    f"block {version.creator_block} > snapshot height "
                    f"{snapshot.height}", reason="phantom-read")
        if version_deleted_in_window(version, rt.db.statuses,
                                     snapshot.height, current):
            raise SerializationFailure(
                f"stale read on {table_name!r}: row deleted at block "
                f"{version.deleter_block} > snapshot height "
                f"{snapshot.height}", reason="stale-read")


# ---------------------------------------------------------------------------
# Expression rendering (EXPLAIN)
# ---------------------------------------------------------------------------

def expr_sql(expr: Expr) -> str:
    """Render an expression back to compact SQL for plan display."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, bool):
            return "TRUE" if expr.value else "FALSE"
        if isinstance(expr.value, str):
            return "'" + expr.value.replace("'", "''") + "'"
        return str(expr.value)
    if isinstance(expr, ColumnRef):
        return expr.qualified
    if isinstance(expr, Param):
        return expr.name
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, BinaryOp):
        if expr.op == "IN_SUBQUERY":
            return f"{_operand_sql(expr.left)} IN (subquery)"
        return (f"{_operand_sql(expr.left)} {expr.op} "
                f"{_operand_sql(expr.right)}")
    if isinstance(expr, UnaryOp):
        if expr.op == "NOT":
            return f"NOT {_operand_sql(expr.operand)}"
        return f"{expr.op}{_operand_sql(expr.operand)}"
    if isinstance(expr, FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(expr_sql(a) for a in expr.args)
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, IsNull):
        return (f"{_operand_sql(expr.operand)} IS "
                f"{'NOT ' if expr.negated else ''}NULL")
    if isinstance(expr, Between):
        return (f"{_operand_sql(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}BETWEEN "
                f"{_operand_sql(expr.low)} AND {_operand_sql(expr.high)}")
    if isinstance(expr, InList):
        items = ", ".join(expr_sql(i) for i in expr.items)
        return (f"{_operand_sql(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}IN ({items})")
    if isinstance(expr, Like):
        return (f"{_operand_sql(expr.operand)} "
                f"{'NOT ' if expr.negated else ''}LIKE "
                f"{_operand_sql(expr.pattern)}")
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        for cond, result in expr.whens:
            parts.append(f"WHEN {expr_sql(cond)} THEN {expr_sql(result)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {expr_sql(expr.else_)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, IntervalLiteral):
        return f"INTERVAL '{expr.text}'"
    if isinstance(expr, SubqueryExpr):
        return "EXISTS (subquery)" if expr.exists else "(subquery)"
    return repr(expr)


def _operand_sql(expr: Expr) -> str:
    if isinstance(expr, BinaryOp):
        return f"({expr_sql(expr)})"
    return expr_sql(expr)


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------

class PlanNode:
    """Base physical operator."""

    est_rows: float = 0.0
    est_cost: float = 0.0

    def rows(self, rt: Runtime) -> Iterator:
        raise NotImplementedError

    def children(self) -> List["PlanNode"]:
        return []

    def describe(self) -> str:
        return type(self).__name__

    def recost(self, db) -> None:
        """Recompute ``est_rows`` / ``est_cost`` from this node's
        children and the database's snapshot-anchored statistics.  Leaf
        scans re-derive from ``db.stats``; composite operators fold
        their children's estimates — so a bottom-up pass
        (:func:`recost_plan`) refreshes the whole tree, and a cache hit
        renders the same ``cost~``/``rows~`` annotations a fresh plan
        would."""
        return None


def recost_plan(node: PlanNode, db,
                scan_bounds: Optional[Dict[int, Any]] = None) -> None:
    """Bottom-up estimate refresh over a plan tree (children first).

    ``scan_bounds`` (keyed by ``id(scan node)``, as the plan cache's
    guard validation produces) refreshes each scan's ``live_bounds``
    first, so histogram-based range selectivity on a cache hit sees the
    same bound values a cold plan of the statement would."""
    for child in node.children():
        recost_plan(child, db, scan_bounds)
    if scan_bounds is not None and isinstance(node, SeqScan):
        node.live_bounds = scan_bounds.get(id(node))
    node.recost(db)


def render_plan(node: PlanNode, depth: int = 0,
                lines: Optional[List[str]] = None,
                stats: Optional[Dict[int, "OpStats"]] = None) -> List[str]:
    """Pretty-print a plan tree, Postgres-style, annotating every
    operator with its estimated cost and output rows.  With ``stats``
    (an EXPLAIN ANALYZE run's :func:`instrument_plan` output) each line
    additionally carries the operator's actual rows/loops/wall time."""
    if lines is None:
        lines = []
    prefix = "" if depth == 0 else "  " * depth + "-> "
    line = (prefix + node.describe() +
            f" (cost~{int(node.est_cost)} rows~{int(node.est_rows)})")
    if stats is not None:
        st = stats.get(id(node))
        if st is not None:
            if st.loops:
                line += (f" (actual rows={st.rows} loops={st.loops} "
                         f"time={st.seconds * 1000.0:.3f}ms)")
            else:
                line += " (actual never executed)"
    lines.append(line)
    for child in node.children():
        render_plan(child, depth + 1, lines, stats)
    return lines


@dataclass
class OpStats:
    """Per-operator actuals collected during an EXPLAIN ANALYZE run."""

    rows: int = 0
    loops: int = 0
    seconds: float = 0.0


def instrument_plan(root: PlanNode) -> Dict[int, OpStats]:
    """Attach row/loop/time counters to every operator of a plan tree.

    Wrapping happens at *instance* level (``node.__dict__``), so the
    class behaviour of a cached, shared plan template is untouched and
    :func:`deinstrument_plan` restores the tree exactly.  Operators that
    are consumed through a side entry point get that wrapped instead of
    ``rows``: a HashJoin pulls its build side via ``scan_rows``, a
    SortMergeJoin pulls both inputs via ``stream_rows``, and a
    DynamicProbe never runs at all (NestedLoopJoin drives it per outer
    row and reports through ``Runtime.probe_stats``).  Timing covers
    time spent *inside* the operator's iterator (children inclusive,
    consumers exclusive), Postgres-style.
    """
    stats: Dict[int, OpStats] = {}

    def wrap_iter(node: PlanNode, attr: str) -> None:
        inner = getattr(node, attr)
        st = stats[id(node)]

        def counted(rt):
            st.loops += 1
            it = inner(rt)
            while True:
                t0 = time.perf_counter()
                try:
                    item = next(it)
                except StopIteration:
                    st.seconds += time.perf_counter() - t0
                    return
                st.seconds += time.perf_counter() - t0
                st.rows += 1
                yield item

        node.__dict__[attr] = counted

    def wrap_list(node: PlanNode, attr: str) -> None:
        inner = getattr(node, attr)
        st = stats[id(node)]

        def counted(rt):
            st.loops += 1
            t0 = time.perf_counter()
            out = inner(rt)
            st.seconds += time.perf_counter() - t0
            st.rows += len(out)
            return out

        node.__dict__[attr] = counted

    def visit(node: PlanNode) -> None:
        stats[id(node)] = OpStats()
        if isinstance(node, DynamicProbe):
            pass    # counted by NestedLoopJoin via rt.probe_stats
        elif isinstance(node, IndexOrderScan):
            wrap_iter(node, "stream_rows")
        elif isinstance(node, SeqScan):
            wrap_list(node, "scan_rows")
        else:
            wrap_iter(node, "rows")
        for child in node.children():
            visit(child)

    visit(root)
    return stats


def deinstrument_plan(root: PlanNode) -> None:
    """Remove :func:`instrument_plan`'s instance-level wrappers — the
    template may live in the (possibly shared) plan cache."""
    def visit(node: PlanNode) -> None:
        for attr in ("rows", "scan_rows", "stream_rows"):
            node.__dict__.pop(attr, None)
        for child in node.children():
            visit(child)

    visit(root)


class OneRow(PlanNode):
    """FROM-less SELECT: a single empty environment."""

    est_rows = 1.0

    def rows(self, rt: Runtime) -> Iterator[Env]:
        yield {}

    def recost(self, db) -> None:
        self.est_rows = 1.0
        self.est_cost = 0.0

    def describe(self) -> str:
        return "Result"


def _scan_target(table: str, alias: str) -> str:
    return f"on {table}" + (f" as {alias}" if alias != table else "")


class SeqScan(PlanNode):
    """Full-heap scan (no usable index).

    Scan nodes are plan *templates*: they store the WHERE expression,
    never bound values.  Bounds are re-derived from the live execution
    context on every run, so a tree pulled from the plan cache scans —
    and records SIREAD state — exactly as a freshly planned one would.
    """

    def __init__(self, table: str, alias: str,
                 where: Optional[Expr] = None, est_rows: float = 0.0):
        self.table = table
        self.alias = alias
        self.where = where
        self.est_rows = est_rows
        # Costing-only bound values (NOT execution state): the planner /
        # plan cache sets this to the statement's extracted bounds right
        # before recost so histogram range selectivity can see them.
        # Execution still re-derives bounds from the live context.
        self.live_bounds: Optional[Dict[str, Dict[str, Any]]] = None

    def scan_rows(self, rt: Runtime) -> List[ScanRow]:
        bounds = None
        if rt.scan_bounds is not None:
            bounds = rt.scan_bounds.get(id(self))
        if bounds is None:
            bounds = extract_bounds(self.where, self.alias, rt.ctx,
                                    rt.alias_columns)
        return execute_scan(rt, self.table, self.alias, bounds)

    def rows(self, rt: Runtime) -> Iterator[Env]:
        for row in self.scan_rows(rt):
            yield {self.alias: row.values}

    def recost(self, db) -> None:
        rows = float(max(db.stats.table_stats(self.table).row_count, 0))
        self.est_rows = rows
        # Full heap walk plus the content sort of the output.
        self.est_cost = max(rows, 1.0) + rows * _l2(rows)

    def describe(self) -> str:
        return f"SeqScan {_scan_target(self.table, self.alias)}"


class IndexScan(SeqScan):
    """Index-served scan; execution re-derives the same bounds the
    planner scored (``execute_scan`` re-runs the deterministic index
    choice over them).

    ``unique_covered`` marks a point lookup (every column of a unique
    index bound by equality) — a structural fact the planner's join
    strategy may rely on, unlike row counts.  ``cost_sig`` carries the
    structural bound shape so estimates re-derive from anchored
    statistics (``recost``) without re-planning.
    """

    def __init__(self, table: str, alias: str, where: Optional[Expr],
                 index_name: str, conditions: Sequence[Expr],
                 est_rows: float = 0.0, unique_covered: bool = False,
                 cost_sig: Optional[CostSig] = None):
        super().__init__(table, alias, where, est_rows)
        self.index_name = index_name
        self.conditions = list(conditions)
        self.unique_covered = unique_covered
        self.cost_sig = cost_sig or (0, False, unique_covered, ())

    def _range_column(self, db) -> Optional[str]:
        """The index column the range bound applies to (the first one
        past the equality prefix), for histogram selectivity."""
        n_eq, has_range, _, _ = self.cost_sig
        if not has_range:
            return None
        try:
            heap = db.catalog.heap_of(self.table)
        except CatalogError:
            return None
        index = heap.indexes.get(self.index_name)
        if index is None or n_eq >= len(index.columns):
            return None
        return index.columns[n_eq]

    def recost(self, db) -> None:
        stats = db.stats.table_stats(self.table)
        n_eq, has_range, unique_covered, eq_cols = self.cost_sig
        ndv = db.stats.ndv(self.table, eq_cols) if eq_cols else None
        range_sel = None
        if has_range:
            range_sel = range_selectivity(db, self.table,
                                          self._range_column(db),
                                          self.live_bounds)
        est = scan_estimate(stats.row_count, n_eq, has_range,
                            unique_covered, eq_ndv=ndv,
                            range_sel=range_sel)
        self.est_rows = est
        # Index descent + matched rows + content sort of the output.
        self.est_cost = _l2(stats.row_count) + est + est * _l2(est)

    def describe(self) -> str:
        conds = ", ".join(expr_sql(c) for c in self.conditions)
        return (f"IndexScan {_scan_target(self.table, self.alias)} "
                f"using {self.index_name} ({conds})")


class Filter(PlanNode):
    """Residual predicate (WHERE) over environment rows."""

    def __init__(self, child: PlanNode, predicate: Expr,
                 binder: Optional[Binder] = None):
        self.child = child
        self.predicate = predicate
        self._predicate = compile_predicate(predicate, binder)
        self.est_rows = child.est_rows

    def rows(self, rt: Runtime) -> Iterator[Env]:
        predicate = self._predicate
        ctx = rt.ctx
        for env in self.child.rows(rt):
            if predicate(ctx.child_for_row(env)):
                yield env

    def children(self) -> List[PlanNode]:
        return [self.child]

    def recost(self, db) -> None:
        self.est_rows = self.child.est_rows
        self.est_cost = self.child.est_cost + self.child.est_rows

    def describe(self) -> str:
        return f"Filter ({expr_sql(self.predicate)})"


class DynamicProbe(PlanNode):
    """Explain-only child of a NestedLoopJoin: the inner access path is
    re-derived per outer row (outer-row values feed the index bounds).
    ``est_rows``/``est_cost`` are *per-probe* estimates."""

    def __init__(self, table: str, alias: str,
                 index_name: Optional[str], conditions: Sequence[Expr],
                 est_rows: float = 0.0,
                 cost_sig: Optional[CostSig] = None):
        self.table = table
        self.alias = alias
        self.index_name = index_name
        self.conditions = list(conditions)
        self.est_rows = est_rows
        self.cost_sig = cost_sig or (0, False, False, ())

    def rows(self, rt: Runtime) -> Iterator:  # pragma: no cover
        raise ExecutionError("DynamicProbe is driven by NestedLoopJoin")

    def recost(self, db) -> None:
        stats = db.stats.table_stats(self.table)
        rows = float(max(stats.row_count, 0))
        if self.index_name is None:
            # Per-row sequential rescans, content sort included.
            self.est_rows = rows
            self.est_cost = max(rows, 1.0) + rows * _l2(rows)
            return
        n_eq, has_range, unique_covered, eq_cols = self.cost_sig
        ndv = db.stats.ndv(self.table, eq_cols) if eq_cols else None
        est = scan_estimate(stats.row_count, n_eq, has_range,
                            unique_covered, eq_ndv=ndv)
        self.est_rows = est
        self.est_cost = _l2(stats.row_count) + est + est * _l2(est)

    def describe(self) -> str:
        if self.index_name is None:
            return (f"SeqScan {_scan_target(self.table, self.alias)} "
                    f"(per outer row)")
        conds = ", ".join(expr_sql(c) for c in self.conditions)
        return (f"IndexProbe {_scan_target(self.table, self.alias)} "
                f"using {self.index_name} ({conds}) (per outer row)")


class NestedLoopJoin(PlanNode):
    """Per-outer-row inner scan — byte-identical to the old executor's
    ``_apply_join``, including the narrow per-probe predicate reads."""

    def __init__(self, outer: PlanNode, join: Join,
                 combined: Optional[Expr], probe: DynamicProbe,
                 est_rows: float = 0.0, binder: Optional[Binder] = None):
        self.outer = outer
        self.join = join
        self.combined = combined   # ON AND WHERE, for inner index bounds
        self.probe = probe
        self._on = compile_predicate(join.on, binder)
        self.est_rows = est_rows

    def rows(self, rt: Runtime) -> Iterator[Env]:
        join = self.join
        alias = join.table.alias
        on = self._on
        schema = rt.db.catalog.schema_of(join.table.name)
        null_row = {col: None for col in schema.column_names()}
        ctx = rt.ctx
        probe_st = None
        if rt.probe_stats is not None:
            probe_st = rt.probe_stats.get(id(self.probe))
        for env in self.outer.rows(rt):
            row_ctx = ctx.child_for_row(env)
            bounds = extract_bounds(self.combined, alias, row_ctx,
                                    rt.alias_columns)
            if probe_st is not None:
                t0 = time.perf_counter()
                inner_rows = execute_scan(rt, join.table.name, alias,
                                          bounds)
                probe_st.loops += 1
                probe_st.rows += len(inner_rows)
                probe_st.seconds += time.perf_counter() - t0
            else:
                inner_rows = execute_scan(rt, join.table.name, alias,
                                          bounds)
            matched = False
            for inner in inner_rows:
                candidate_env = {**env, alias: inner.values}
                if on(ctx.child_for_row(candidate_env)):
                    matched = True
                    yield candidate_env
            if join.kind == "LEFT" and not matched:
                yield {**env, alias: dict(null_row)}

    def children(self) -> List[PlanNode]:
        return [self.outer, self.probe]

    def recost(self, db) -> None:
        outer_rows = max(self.outer.est_rows, 1.0)
        self.est_rows = outer_rows * max(self.probe.est_rows, 1.0)
        self.est_cost = self.outer.est_cost + \
            outer_rows * max(self.probe.est_cost, 1.0)

    def describe(self) -> str:
        on = f" on ({expr_sql(self.join.on)})" if self.join.on is not None \
            else ""
        return f"NestedLoopJoin {self.join.kind}{on}"


def _join_key(values: Sequence[Any]) -> Tuple:
    """Hash-bucket key consistent with the ``=`` comparator: SQL's
    ``compare_values`` treats TRUE = 1, so booleans bucket as numbers
    (index keys rank them separately, which would make the hash join
    miss pairs the nested loop matches).  False positives from bucket
    collisions are removed by the ON / WHERE re-evaluation."""
    return tuple(
        normalize_key_part(float(v)) if isinstance(v, bool)
        else normalize_key_part(v)
        for v in values)


def join_estimates(db, outer: PlanNode, inner: PlanNode, join,
                   inner_key_cols: Tuple[str, ...]
                   ) -> Tuple[float, float]:
    """(est_rows, est_cost) for a both-sides-read-once equi-join (hash
    or sort-merge): output is the classic ``|outer|·|inner| / NDV(key)``
    over the anchored distinct-key count of the inner join columns; cost
    is both inputs plus one pass over each side's rows (build+probe for
    hash, merge for sort-merge — the same first-order shape)."""
    ndv = db.stats.ndv(join.table.name, inner_key_cols) \
        if inner_key_cols else 1
    outer_rows = max(outer.est_rows, 1.0)
    inner_rows = max(inner.est_rows, 1.0)
    est = max(1.0, outer_rows * inner_rows / float(max(ndv, 1)))
    if join.kind == "LEFT":
        est = max(est, outer_rows)
    cost = outer.est_cost + inner.est_cost + outer_rows + inner_rows
    return est, cost


class HashJoin(PlanNode):
    """Build a hash table over the inner scan once, probe per outer row.

    The equi-key pairs come from ON/WHERE conjuncts; the full ON clause is
    still re-evaluated per candidate pair, so NULL-key and residual
    semantics match the nested loop exactly.  Output order also matches:
    probe rows stream in outer order, bucket entries preserve the build
    scan's content-sorted order.
    """

    def __init__(self, outer: PlanNode, join: Join, build: SeqScan,
                 keys: Sequence[Tuple[str, Expr]], est_rows: float = 0.0,
                 binder: Optional[Binder] = None):
        self.outer = outer
        self.join = join
        self.build = build
        self.keys = list(keys)     # (inner column, probe expression)
        self._probe_fns = [compile_expr(expr, binder) for _, expr in keys]
        self._on = compile_predicate(join.on, binder)
        self.est_rows = est_rows

    def rows(self, rt: Runtime) -> Iterator[Env]:
        join = self.join
        alias = join.table.alias
        on = self._on
        schema = rt.db.catalog.schema_of(join.table.name)
        null_row = {col: None for col in schema.column_names()}
        inner_cols = [col for col, _ in self.keys]
        probe_fns = self._probe_fns

        table: Dict[Tuple, List[ScanRow]] = {}
        for inner in self.build.scan_rows(rt):
            try:
                key = _join_key([inner.values.get(c) for c in inner_cols])
            except TypeMismatchError:
                continue  # unindexable key value can never equal a probe
            table.setdefault(key, []).append(inner)

        ctx = rt.ctx
        for env in self.outer.rows(rt):
            row_ctx = ctx.child_for_row(env)
            probe_vals = [fn(row_ctx) for fn in probe_fns]
            try:
                candidates = table.get(_join_key(probe_vals), ())
            except TypeMismatchError:
                candidates = ()
            matched = False
            for inner in candidates:
                candidate_env = {**env, alias: inner.values}
                if on(ctx.child_for_row(candidate_env)):
                    matched = True
                    yield candidate_env
            if join.kind == "LEFT" and not matched:
                yield {**env, alias: dict(null_row)}

    def children(self) -> List[PlanNode]:
        return [self.outer, self.build]

    def recost(self, db) -> None:
        self.est_rows, self.est_cost = join_estimates(
            db, self.outer, self.build, self.join,
            tuple(col for col, _ in self.keys))

    def describe(self) -> str:
        alias = self.join.table.alias
        conds = ", ".join(f"{alias}.{col} = {expr_sql(e)}"
                          for col, e in self.keys)
        return f"HashJoin {self.join.kind} ({conds})"


class HashAggregate(PlanNode):
    """GROUP BY / global aggregation, HAVING, and grouped projection.

    Emits ``(order_keys, output_row)`` pairs for Sort/Distinct/Limit.
    Groups form in first-encounter order over the (content-ordered) input
    so float aggregation folds identically on every node.
    """

    def __init__(self, child: PlanNode, group_by: Sequence[Expr],
                 aggregates: Sequence[FunctionCall], having: Optional[Expr],
                 items: Sequence[SelectItem], order_items: Sequence[OrderItem],
                 est_rows: float = 0.0, binder: Optional[Binder] = None):
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.having = having
        self.items = list(items)
        self.order_items = list(order_items)
        self.est_rows = est_rows
        self._group_fns = [compile_expr(g, binder) for g in self.group_by]
        # (fingerprint, call, compiled single argument or None) — the
        # arity/star errors stay runtime errors, as the interpreter raised
        # them while computing the group, not while planning.
        self._agg_specs = [
            (expr_fingerprint(call), call,
             compile_expr(call.args[0], binder)
             if not call.star and len(call.args) == 1 else None)
            for call in self.aggregates]
        self._having = (None if having is None
                        else compile_predicate(having, binder))
        self._item_fns = [_compile_grouped_item(item, binder)
                          for item in self.items]
        self._order_fns = [compile_expr(o.expr, binder)
                           for o in self.order_items]

    def rows(self, rt: Runtime) -> Iterator[Tuple[Tuple, Tuple]]:
        ctx = rt.ctx
        group_fns = self._group_fns
        groups: List[Tuple[Tuple, List[Env]]] = []
        group_index: Dict[str, int] = {}
        for env in self.child.rows(rt):
            row_ctx = ctx.child_for_row(env)
            key = tuple(fn(row_ctx) for fn in group_fns)
            fingerprint = repr(key)
            pos = group_index.get(fingerprint)
            if pos is None:
                group_index[fingerprint] = len(groups)
                groups.append((key, [env]))
            else:
                groups[pos][1].append(env)
        if not groups and not self.group_by:
            groups = [((), [])]  # global aggregate over empty input

        for key, members in groups:
            agg_values: Dict[str, Any] = {}
            for fingerprint, call, arg_fn in self._agg_specs:
                agg_values[fingerprint] = \
                    _compute_aggregate(call, arg_fn, members, ctx)
            representative = members[0] if members else {}
            row_ctx = ctx.child_for_row(representative)
            row_ctx.aggregate_values = agg_values
            if self._having is not None and not self._having(row_ctx):
                continue
            output = tuple(fn(row_ctx) for fn in self._item_fns)
            order_keys = tuple(fn(row_ctx) for fn in self._order_fns)
            yield (order_keys, output)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def recost(self, db) -> None:
        child_rows = self.child.est_rows
        self.est_rows = child_rows if self.group_by else 1.0
        self.est_cost = self.child.est_cost + 2.0 * child_rows

    def describe(self) -> str:
        if self.group_by:
            keys = ", ".join(expr_sql(g) for g in self.group_by)
            return f"HashAggregate (group by {keys})"
        return "HashAggregate (global)"


def _compile_grouped_item(item: SelectItem, binder) -> Any:
    if isinstance(item.expr, Star):
        def run_star(row_ctx):
            raise ExecutionError("'*' is not valid with GROUP BY")
        return run_star
    return compile_expr(item.expr, binder)


def fold_sum(values: Sequence[Any]) -> Any:
    """Order-independent SUM fold shared by the row-store and columnar
    aggregate paths.

    All-float inputs use ``math.fsum`` — exactly rounded, so the total
    does not depend on fold order (scan content order here, physical
    ingest order in the column store, either across nodes).  Exact types
    (int/Decimal) and mixed inputs fold sequentially, where order cannot
    change the result (or, for text concatenation, where scan content
    order is the defined behaviour)."""
    import math

    if not values:
        return None
    if all(type(v) is float for v in values):
        return math.fsum(values)
    total = values[0]
    for value in values[1:]:
        total = total + value
    return total


def _compute_aggregate(call: FunctionCall, arg_fn, group: List[Env],
                       ctx: EvalContext) -> Any:
    import functools

    if call.star:
        if call.name != "count":
            raise ExecutionError(f"{call.name}(*) is not valid")
        return len(group)
    if arg_fn is None:
        raise ExecutionError(
            f"aggregate {call.name}() takes exactly one argument")
    values = []
    for env in group:
        value = arg_fn(ctx.child_for_row(env))
        if value is not None:
            values.append(value)
    if call.distinct:
        unique = []
        for value in values:
            if not any(compare_values(value, u) == 0 for u in unique):
                unique.append(value)
        values = unique
    if call.name == "count":
        return len(values)
    if not values:
        return None
    if call.name == "sum":
        return fold_sum(values)
    if call.name == "avg":
        return fold_sum(values) / len(values)
    if call.name == "min":
        return functools.reduce(
            lambda a, b: a if compare_values(a, b) <= 0 else b, values)
    if call.name == "max":
        return functools.reduce(
            lambda a, b: a if compare_values(a, b) >= 0 else b, values)
    raise ExecutionError(f"unknown aggregate {call.name!r}")


class Project(PlanNode):
    """Plain (non-grouped) projection, including ``*`` expansion.

    Emits ``(order_keys, output_row)`` pairs.
    """

    def __init__(self, child: PlanNode, items: Sequence[SelectItem],
                 order_items: Sequence[OrderItem], columns: Sequence[str],
                 est_rows: float = 0.0, binder: Optional[Binder] = None):
        self.child = child
        self.items = list(items)
        self.order_items = list(order_items)
        self.columns = list(columns)
        self.est_rows = est_rows
        # Star items need the runtime environment (provenance columns,
        # alias expansion), so they stay interpreted; everything else
        # compiles once.
        self._item_fns = [
            None if isinstance(item.expr, Star)
            else compile_expr(item.expr, binder) for item in self.items]
        self._order_fns = [compile_expr(o.expr, binder)
                           for o in self.order_items]

    def rows(self, rt: Runtime) -> Iterator[Tuple[Tuple, Tuple]]:
        ctx = rt.ctx
        for env in self.child.rows(rt):
            row_ctx = ctx.child_for_row(env)
            output: List[Any] = []
            for item, fn in zip(self.items, self._item_fns):
                if fn is None:
                    output.extend(_expand_star(item.expr, env, rt))
                else:
                    output.append(fn(row_ctx))
            order_keys = tuple(fn(row_ctx) for fn in self._order_fns)
            yield (order_keys, tuple(output))

    def children(self) -> List[PlanNode]:
        return [self.child]

    def recost(self, db) -> None:
        self.est_rows = self.child.est_rows
        self.est_cost = self.child.est_cost + self.child.est_rows

    def describe(self) -> str:
        return f"Project ({', '.join(self.columns)})"


def _expand_star(star: Star, env: Env, rt: Runtime) -> List[Any]:
    out: List[Any] = []
    aliases = [star.table] if star.table else sorted(env)
    for alias in aliases:
        if alias not in env:
            raise ExecutionError(f"unknown alias {alias!r} for '*'")
        cols = rt.alias_columns.get(alias)
        names = list(cols) if cols else sorted(env[alias])
        if rt.tx.provenance:
            # Provenance pseudo-columns ride along, in the same fixed
            # order the output columns advertise them.
            names.extend(c for c in PROVENANCE_COLUMNS if c not in names)
        for name in names:
            out.append(env[alias].get(name))
    return out


class Sort(PlanNode):
    """ORDER BY over decorated ``(order_keys, output)`` pairs;
    NULLS LAST, stable."""

    def __init__(self, child: PlanNode, order_items: Sequence[OrderItem]):
        self.child = child
        self.order_items = list(order_items)
        self.est_rows = child.est_rows

    def rows(self, rt: Runtime) -> Iterator[Tuple[Tuple, Tuple]]:
        import functools

        order_items = self.order_items

        def cmp_rows(a, b):
            for spec, av, bv in zip(order_items, a[0], b[0]):
                if av is None and bv is None:
                    continue
                if av is None:
                    return 1   # NULLS LAST
                if bv is None:
                    return -1
                c = compare_values(av, bv)
                if c:
                    return c if spec.ascending else -c
            return 0

        yield from sorted(self.child.rows(rt),
                          key=functools.cmp_to_key(cmp_rows))

    def children(self) -> List[PlanNode]:
        return [self.child]

    def recost(self, db) -> None:
        rows = self.child.est_rows
        self.est_rows = rows
        self.est_cost = self.child.est_cost + rows * _l2(rows)

    def describe(self) -> str:
        keys = ", ".join(
            f"{expr_sql(o.expr)} {'ASC' if o.ascending else 'DESC'}"
            for o in self.order_items)
        return f"Sort ({keys})"


class Distinct(PlanNode):
    """SELECT DISTINCT over decorated pairs (dedup on the output row)."""

    def __init__(self, child: PlanNode):
        self.child = child
        self.est_rows = child.est_rows

    def rows(self, rt: Runtime) -> Iterator[Tuple[Tuple, Tuple]]:
        seen = set()
        for keys, row in self.child.rows(rt):
            key = repr(row)
            if key not in seen:
                seen.add(key)
                yield (keys, row)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def recost(self, db) -> None:
        self.est_rows = self.child.est_rows
        self.est_cost = self.child.est_cost + self.child.est_rows

    def describe(self) -> str:
        return "Distinct"


class Limit(PlanNode):
    """LIMIT/OFFSET.

    The child is drained completely before truncating: scans and
    nested-loop probes have SSI side effects (SIREAD recording, ACL
    checks, the EO missing-index abort, window checks) that must happen
    exactly as they would without the LIMIT — ``SELECT ... LIMIT 0``
    still performs every read the predicate describes.
    """

    def __init__(self, child: PlanNode, limit: Optional[Expr],
                 offset: Optional[Expr]):
        self.child = child
        self.limit = limit
        self.offset = offset
        self.est_rows = child.est_rows

    def rows(self, rt: Runtime) -> Iterator[Tuple[Tuple, Tuple]]:
        start, stop = self._slice_bounds(rt)
        output = list(self.child.rows(rt))
        yield from islice(output, start, stop)

    def children(self) -> List[PlanNode]:
        return [self.child]

    def recost(self, db) -> None:
        self.est_rows = self.child.est_rows
        self.est_cost = self.child.est_cost

    def _slice_bounds(self, rt: Runtime) -> Tuple[int, Optional[int]]:
        start = 0
        if self.offset is not None:
            start = int(evaluate(self.offset, rt.ctx) or 0)
            if start < 0:
                raise ExecutionError("OFFSET must not be negative")
        stop = None
        if self.limit is not None:
            value = evaluate(self.limit, rt.ctx)
            if value is not None:
                if int(value) < 0:
                    raise ExecutionError("LIMIT must not be negative")
                stop = start + int(value)
        return start, stop

    def describe(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"limit={expr_sql(self.limit)}")
        if self.offset is not None:
            parts.append(f"offset={expr_sql(self.offset)}")
        return f"Limit ({', '.join(parts)})"


# ---------------------------------------------------------------------------
# Index-order streaming: ordered scans, sort-merge join, streaming Limit
# ---------------------------------------------------------------------------

class IndexOrderScan(SeqScan):
    """Scan that emits rows in *index order* instead of content order.

    The candidate versions come from walking an index whose leading
    column is ``order_column`` (a range walk when the execution-time
    bounds constrain that column, the whole index otherwise), so the
    output is ordered by that column without any O(n·log n) sort.  Two
    determinism obligations remain:

    * physical index order is NOT node-deterministic for *equal* keys
      (entries tie-break on version ids, which differ across nodes —
      aborted executions burn ids), so rows within an equal-key run are
      content-sorted before they are emitted: key-major, content-minor
      order is identical on every node;
    * the SSI side effects — the predicate read, the phantom/stale
      window checks over every candidate, and the EO missing-index
      abort — happen eagerly in :meth:`prepare`, *before* the first row
      is consumed, so a streaming Limit that stops early (or consumes
      nothing) still performs them exactly once.  Row reads are
      recorded only for rows actually streamed; the predicate read
      covers the whole scanned range, so SSI stays conservative (see
      docs/sql_engine.md).
    """

    def __init__(self, table: str, alias: str, where: Optional[Expr],
                 index_name: str, order_column: str,
                 descending: bool = False,
                 conditions: Sequence[Expr] = (),
                 est_rows: float = 0.0,
                 cost_sig: Optional[CostSig] = None):
        super().__init__(table, alias, where, est_rows)
        self.index_name = index_name
        self.order_column = order_column
        self.descending = descending
        self.conditions = list(conditions)
        self.cost_sig = cost_sig or (0, False, False, ())

    # -- preparation (SSI side effects happen here, exactly once) --------

    def prepare(self, rt: Runtime):
        if rt.prepared_scans is None:
            rt.prepared_scans = {}
        state = rt.prepared_scans.get(id(self))
        if state is not None:
            return state
        rt.check_read(self.table)
        schema = rt.db.catalog.schema_of(self.table)
        heap = rt.db.catalog.heap_of(self.table)
        index = heap.indexes.get(self.index_name)
        if index is None or index.columns[0] != self.order_column:
            raise ExecutionError(
                f"index {self.index_name!r} no longer orders "
                f"{self.table}.{self.order_column} (stale plan)")
        tx = rt.tx
        as_of = rt.ctx.as_of_height if not tx.provenance else None

        bounds = None
        if rt.scan_bounds is not None:
            bounds = rt.scan_bounds.get(id(self))
        if bounds is None:
            bounds = extract_bounds(self.where, self.alias, rt.ctx,
                                    rt.alias_columns)
        slot = bounds.get(self.order_column, {})
        low_key = high_key = None
        low_incl = high_incl = True
        if "eq" in slot:
            low_key = high_key = normalize_key([slot["eq"]])
        else:
            if "low" in slot:
                value, low_incl = slot["low"]
                low_key = normalize_key([value])
            if "high" in slot:
                value, high_incl = slot["high"]
                high_key = normalize_key([value])

        if low_key is None and high_key is None:
            if tx.require_index and not schema.system and \
                    not tx.provenance:
                raise MissingIndexError(
                    f"no index supports the predicate on "
                    f"{self.table!r}; the execute-order-in-parallel "
                    f"flow requires index-backed predicate reads")
            candidate_ids = index.scan_all()
            predicate = PredicateRead(table=self.table, columns=())
        else:
            candidate_ids = index.ordered_scan(low_key, high_key, low_incl,
                                               high_incl)
            predicate = PredicateRead(
                table=self.table, columns=index.columns[:1],
                low_key=low_key, high_key=high_key,
                low_inclusive=low_incl, high_inclusive=high_incl)

        candidates = heap.resolve(candidate_ids)
        if as_of is None:
            tx.record_predicate_read(predicate)
            window_checks(rt, self.table, candidates)
            snapshot = tx.snapshot
            own_xid: Optional[int] = tx.xid
        else:
            snapshot = BlockSnapshot(as_of)
            own_xid = None
        state = (candidates, snapshot, own_xid, as_of)
        rt.prepared_scans[id(self)] = state
        return state

    # -- ordered iteration ------------------------------------------------

    @staticmethod
    def _order_key(value: Any):
        if value is None:
            return (_ORDER_NULL,)
        try:
            return _join_key((value,))
        except TypeMismatchError:
            return (_ORDER_NULL, repr(value))

    def stream_rows(self, rt: Runtime) -> Iterator[ScanRow]:
        """Rows in (key, content) order; visibility checks and row-read
        recording happen lazily as the consumer advances."""
        candidates, snapshot, own_xid, as_of = self.prepare(rt)
        tx = rt.tx
        statuses = rt.db.statuses
        ordered = reversed(candidates) if self.descending else candidates
        buffer: List[ScanRow] = []
        current_key = None
        for version in ordered:
            if not version_visible(version, snapshot, statuses, own_xid):
                continue
            if as_of is None:
                tx.record_row_read(self.table, version)
            row = ScanRow(values=dict(version.values), version=version)
            key = self._order_key(row.values.get(self.order_column))
            if buffer and key != current_key:
                buffer.sort(key=lambda r: row_content_key(r.values))
                yield from buffer
                buffer = []
            current_key = key
            buffer.append(row)
        if buffer:
            buffer.sort(key=lambda r: row_content_key(r.values))
            yield from buffer

    def scan_rows(self, rt: Runtime) -> List[ScanRow]:
        return list(self.stream_rows(rt))

    def rows(self, rt: Runtime) -> Iterator[Env]:
        for row in self.stream_rows(rt):
            yield {self.alias: row.values}

    def recost(self, db) -> None:
        self.est_rows, self.est_cost = ordered_scan_estimates(
            db, self.table, self.cost_sig,
            range_column=self.order_column, bounds=self.live_bounds)

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        conds = "; ".join(expr_sql(c) for c in self.conditions)
        cond_note = f" ({conds})" if conds else ""
        return (f"IndexOrderScan {_scan_target(self.table, self.alias)} "
                f"using {self.index_name}{cond_note} "
                f"(order by {self.order_column} {direction})")


_ORDER_NULL = -1   # sorts a NULL/unindexable marker below every rank


class SortMergeJoin(PlanNode):
    """Merge two index-ordered scans on one equi-key pair.

    Both inputs arrive in (join key, content) order from
    :class:`IndexOrderScan`, so matching is a single linear merge: no
    hash build, no per-outer-row probes, and the output is itself
    ordered by the join key — when an ``ORDER BY <join key> ASC``
    follows, the planner elides the Sort entirely.

    Output order is outer-major within each equal-key group (each outer
    row pairs with the inner group in the inner's content order), which
    is exactly the order the hash/nested-loop pipelines feed into a Sort
    on the join key — so plan-shape changes never change result bytes.
    The full ON clause re-evaluates per candidate pair (NULL-key and
    residual semantics match the other join operators; normalized-key
    collisions behave like hash-bucket collisions).  Predicate reads are
    the two scans' own — whole-range, conservative for SSI, exactly like
    a hash join's build scan.

    Both inputs *stream*: the scans' SSI side effects run eagerly in
    ``prepare`` (outer first, matching the old materializing order), and
    the merge then pulls rows incrementally, buffering only the current
    equal-key group on each side — never the whole candidate lists.
    Both streams are non-decreasing in normalized key, so a single
    forward pass suffices; inner rows with NULL/unmatchable keys are
    dropped as they are encountered (they can never satisfy ``=``).
    """

    def __init__(self, outer_scan: IndexOrderScan, join: Join,
                 inner_scan: IndexOrderScan, outer_key: str,
                 inner_key: str, est_rows: float = 0.0,
                 binder: Optional[Binder] = None):
        self.outer = outer_scan
        self.join = join
        self.inner = inner_scan
        self.outer_key = outer_key
        self.inner_key = inner_key
        self._on = compile_predicate(join.on, binder)
        self.est_rows = est_rows

    def rows(self, rt: Runtime) -> Iterator[Env]:
        join = self.join
        outer_alias = self.outer.alias
        inner_alias = join.table.alias
        on = self._on
        left = join.kind == "LEFT"
        schema = rt.db.catalog.schema_of(join.table.name)
        null_row = {col: None for col in schema.column_names()}
        ctx = rt.ctx

        def merge_key(values: Dict[str, Any], column: str):
            value = values.get(column)
            if value is None:
                return None
            try:
                return _join_key((value,))
            except TypeMismatchError:
                return None   # unindexable values never match '='

        # SSI side effects (predicate reads, window checks, EO aborts)
        # happen before the first row streams, in the order the old
        # materializing implementation performed them.
        self.outer.prepare(rt)
        self.inner.prepare(rt)

        outer_stream = self.outer.stream_rows(rt)
        inner_stream = self.inner.stream_rows(rt)

        def next_inner() -> Optional[Tuple[Any, ScanRow]]:
            """Next inner (key, row) pair; NULL/unmatchable keys can
            never join and are dropped as encountered."""
            for row in inner_stream:
                key = merge_key(row.values, self.inner_key)
                if key is not None:
                    return (key, row)
            return None

        inner_next = next_inner()   # one-row lookahead

        def inner_group_for(okey) -> List[ScanRow]:
            """Advance the inner cursor to ``okey`` and collect its
            equal-key group (buffered: one outer group joins every row
            of it)."""
            nonlocal inner_next
            matches: List[ScanRow] = []
            while inner_next is not None and inner_next[0] < okey:
                inner_next = next_inner()
            while inner_next is not None and inner_next[0] == okey:
                matches.append(inner_next[1])
                inner_next = next_inner()
            return matches

        # Outer side: buffer one equal-key group at a time.
        group: List[ScanRow] = []
        group_key: Any = None

        def emit(okey, rows: List[ScanRow]) -> Iterator[Env]:
            matches = inner_group_for(okey) if okey is not None else []
            for outer_row in rows:
                env = {outer_alias: outer_row.values}
                matched = False
                for inner_row in matches:
                    candidate = {**env, inner_alias: inner_row.values}
                    if on(ctx.child_for_row(candidate)):
                        matched = True
                        yield candidate
                if left and not matched:
                    yield {**env, inner_alias: dict(null_row)}

        for outer_row in outer_stream:
            okey = merge_key(outer_row.values, self.outer_key)
            if group and okey != group_key:
                yield from emit(group_key, group)
                group = []
            group_key = okey
            group.append(outer_row)
        if group:
            yield from emit(group_key, group)

    def sorted_columns(self) -> List[Tuple[str, str]]:
        """(alias, column) pairs the output is ascending-ordered by.
        The inner key only qualifies for INNER joins: LEFT emits NULL
        inner columns on unmatched outer rows."""
        out = [(self.outer.alias, self.outer_key)]
        if self.join.kind != "LEFT":
            out.append((self.join.table.alias, self.inner_key))
        return out

    def children(self) -> List[PlanNode]:
        return [self.outer, self.inner]

    def recost(self, db) -> None:
        self.est_rows, self.est_cost = join_estimates(
            db, self.outer, self.inner, self.join, (self.inner_key,))

    def describe(self) -> str:
        return (f"SortMergeJoin {self.join.kind} "
                f"({self.join.table.alias}.{self.inner_key} = "
                f"{self.outer.alias}.{self.outer_key})")


class StreamingLimit(Limit):
    """LIMIT/OFFSET over an index-order pipeline.

    Unlike :class:`Limit`, the child is consumed lazily and iteration
    stops at the slice boundary — the point of the index-order pipeline
    is to not materialize (or sort) rows past the LIMIT.  The SSI
    obligations a draining Limit met implicitly are met explicitly
    instead: :meth:`IndexOrderScan.prepare` records the predicate read
    and runs the candidate window checks before the first row is
    consumed, even for ``LIMIT 0``.  Rows past the slice are never
    *read* (no row-read records) — the predicate read already covers
    them, so SSI conflict detection stays conservative.
    """

    def __init__(self, child: PlanNode, limit: Optional[Expr],
                 offset: Optional[Expr], scan: IndexOrderScan):
        super().__init__(child, limit, offset)
        self.scan = scan

    def rows(self, rt: Runtime) -> Iterator[Tuple[Tuple, Tuple]]:
        start, stop = self._slice_bounds(rt)
        self.scan.prepare(rt)   # SSI side effects even when stop == 0
        yield from islice(self.child.rows(rt), start, stop)

    def describe(self) -> str:
        parts = ["streaming"]
        if self.limit is not None:
            parts.append(f"limit={expr_sql(self.limit)}")
        if self.offset is not None:
            parts.append(f"offset={expr_sql(self.offset)}")
        return f"Limit ({', '.join(parts)})"
