"""Statement fast path: the plan-template cache.

Stored procedures and re-executed transactions run the *same* statements
on every replica, so re-binding and re-planning each execution is pure
overhead.  This module caches physical plan *templates* per database,
keyed by::

    (statement fingerprint, context shape, catalog version,
     stats anchor, tx flags)

* **statement fingerprint** — the structural identity of the parsed tree
  (``repr`` of the dataclass AST, memoized on the node: cached parse
  trees and stored-procedure bodies fingerprint in O(1) after the first
  call);
* **context shape** — which parameters / PL variables / outer-row columns
  are NULL.  Bound extraction drops NULL comparisons, so nullness (not
  values) is what can change a plan's structure;
* **catalog version** — the catalog's ``version_token``: a monotonic
  counter the catalog bumps on DDL and on vacuum-driven stats drift,
  paired with a structural fingerprint of the whole catalog.  A bump
  makes every older entry unreachable (a private cache's registered
  listener purges them eagerly).  The fingerprint is what makes
  **process-shared caches** safe: several nodes of one process with
  identical catalogs (same DDL history → same token) share one cache
  and each other's templates — cutting N-node memory to one template
  set — while a node whose catalog diverged (private-schema DDL) can
  never be served another catalog's plans.  Shared caches skip the
  eager purge (another node may still legitimately sit at the purged
  token); the token keying plus LRU eviction retire stale entries;
* **stats anchor** — the committed block height the planner's anchored
  statistics were pinned to.  Cost-based strategy choice is a pure
  function of (statement, anchored stats), so a template planned at one
  height must never serve an execution planning at another: nodes at
  the same height re-derive the same plan, nodes at different heights
  simply miss and re-plan (sql/stats.py);
* **tx flags** — ``require_index`` (execute-order-in-parallel planning
  rules), ``provenance`` (pseudo-columns change binding and output),
  ``allow_nondeterministic`` (changes which bounds are const-evaluable),
  and the database's ``cost_based_planning`` toggle.

Determinism argument: plans must be *node-deterministic* — a cache hit
may never change the chosen plan or the SIREAD set, or replicas would
diverge on SSI abort decisions.  Two mechanisms guarantee this:

1. Templates are split from per-execution state: scan nodes store the
   WHERE *expression* and re-derive bound values from the live
   ``EvalContext`` every execution, so runtime index ranges (and hence
   predicate reads) are computed identically whether the tree came from
   the cache or the planner.
2. Every template carries :class:`ScanGuard` records — one per statically
   planned scan — capturing the structural index choice the planner made.
   On lookup the guards are re-derived against the *current* context; any
   mismatch (the shape key is deliberately coarse — e.g. a CASE expression
   may fold to NULL for some inputs) falls back to a full re-plan, which
   is exactly what an uncached execution would do.

``cost~``/``rows~`` EXPLAIN annotations are never left stale: every
validated hit re-derives the whole tree's estimates from the anchored
statistics (:func:`refresh_row_estimates` → ``recost_plan``), so a hit
renders exactly what a fresh planning pass at the same anchor would.
The strategy choice itself cannot drift on a hit — every costing input
(anchor, catalog version, cost-based toggle) is part of the key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.sql.ast_nodes import Expr, Statement
from repro.sql.expressions import EvalContext
from repro.sql.plan import PlanNode, extract_bounds, rank_indexes, \
    recost_plan

__all__ = [
    "PlanCache", "PlanEntry", "ScanGuard", "context_shape",
    "refresh_row_estimates", "statement_fingerprint", "validate_guards",
]

# (index name, n leading equality columns, has range on next column);
# None means no index serves the bounds (sequential scan).
ScanSignature = Optional[Tuple[str, int, bool]]


def statement_fingerprint(stmt: Statement) -> str:
    """Structural identity of a parsed statement, memoized on the node
    (safe: the AST is immutable after parsing, and the attribute lives
    outside the dataclass fields so ``repr`` output is unaffected)."""
    fp = stmt.__dict__.get("_fingerprint")
    if fp is None:
        fp = repr(stmt)
        stmt.__dict__["_fingerprint"] = fp
    return fp


def context_shape(ctx: EvalContext) -> Tuple:
    """The NULL-shape of everything bound at execution time: positional
    parameters, PL variables, and the outer-row scope chain (correlated
    subqueries re-plan per outer row; their shape varies with outer-row
    nullness)."""
    env_shapes: List[Tuple] = []
    scope: Optional[EvalContext] = ctx
    while scope is not None:
        if scope.env:
            env_shapes.append(tuple(sorted(
                (alias, tuple(sorted(
                    col for col, value in values.items() if value is None)))
                for alias, values in scope.env.items())))
        scope = scope.outer
    return (tuple(p is None for p in ctx.params),
            tuple(sorted((name, value is None)
                         for name, value in ctx.variables.items())),
            tuple(env_shapes))


@dataclass
class ScanGuard:
    """One statically planned scan's expected structural signature.

    Covers every bounds-dependent input to the planner's decisions: the
    scan's own SeqScan/IndexScan split, ``unique_covered`` point-lookup
    detection, and (via the build-side scan of each candidate hash join)
    the hash-vs-nested-loop strategy choice.  ``node`` is the scan node
    this guard validated (when it survived into the plan tree), so the
    bounds computed during validation can be handed to execution instead
    of being re-extracted per scan."""

    table: str
    alias: str
    where: Optional[Expr]
    alias_columns: Dict[str, Sequence[str]]
    signature: ScanSignature
    node: Any = None
    # Columnar (AS OF) scans have no index signature to re-derive — the
    # guard only validates table existence and recomputes the bounds the
    # scan uses for zone-map pruning.
    columnar: bool = False


def validate_guards(catalog, guards: Sequence[ScanGuard],
                    ctx: EvalContext
                    ) -> Optional[Dict[int, Dict[str, Dict[str, Any]]]]:
    """Re-derive every guard's structural signature under ``ctx``.

    Returns None when any guard fails (the caller must re-plan), else a
    ``{id(scan node): bounds}`` map of the bounds computed along the way —
    statically planned scans execute with the statement context, so the
    executor threads these through :class:`Runtime` and the scans skip
    their own extraction."""
    bounds_by_node: Dict[int, Dict[str, Dict[str, Any]]] = {}
    for guard in guards:
        try:
            heap = catalog.heap_of(guard.table)
        except CatalogError:
            return None
        bounds = extract_bounds(guard.where, guard.alias, ctx,
                                guard.alias_columns)
        if not guard.columnar:
            best = rank_indexes(heap, bounds)
            sig = None if best is None else (best[0].name, best[1], best[2])
            if sig != guard.signature:
                return None
        if guard.node is not None:
            bounds_by_node[id(guard.node)] = bounds
    return bounds_by_node


def _range_bounds_fingerprint(guards: Sequence[ScanGuard],
                              scan_bounds: Optional[Dict[int, Dict]]
                              ) -> Tuple:
    """Value fingerprint of every *range* bound the validated guards
    produced.  Histogram range selectivity is value-dependent, so a
    template re-executed with different range parameters must recost
    even though the structural guards (and the stats tokens) are
    unmoved.  Equality bounds stay out of the fingerprint — their
    selectivity is NDV-based, value-free — so the statement fast path
    keeps skipping recosts for pure point-lookup workloads."""
    if not scan_bounds:
        return ()
    parts: List[Tuple] = []
    for i, guard in enumerate(guards):
        if guard.node is None:
            continue
        bounds = scan_bounds.get(id(guard.node))
        if not bounds:
            continue
        for col in sorted(bounds):
            slot = bounds[col]
            if "eq" in slot or ("low" not in slot and "high" not in slot):
                continue
            parts.append((i, col, repr(slot.get("low")),
                          repr(slot.get("high"))))
    return tuple(parts)


def refresh_row_estimates(db, entry: "PlanEntry",
                          scan_bounds: Optional[Dict[int, Dict]] = None
                          ) -> None:
    """Refresh the ``cost~``/``rows~`` EXPLAIN annotations of a cached
    template from the database's snapshot-anchored statistics.

    Committed state can change at the same anchor only through test-style
    out-of-band commits (the block processor always advances the anchor,
    which changes the cache key), but the anchored stats cache also
    tracks heap drift — so a validated hit recosts the *whole* tree
    (scan estimates, join costs, everything above) and renders exactly
    what a cold re-plan at the same anchor would, including histogram
    range selectivity over the guard-validated bound values.  Purely
    observational: the strategy choice embedded in the template was
    keyed on the same anchor, so recosting can never disagree with it."""
    tables = sorted({guard.table for guard in entry.guards})
    try:
        token: Optional[Tuple] = (
            tuple(db.stats._token(table) for table in tables),
            _range_bounds_fingerprint(entry.guards, scan_bounds))
    except CatalogError:
        token = None
    if token is not None and token == entry.recost_token:
        return   # nothing the estimates depend on has moved
    plan = entry.plan
    root = getattr(plan, "root", plan)
    if isinstance(root, PlanNode):
        recost_plan(root, db, scan_bounds)
    entry.recost_token = token


@dataclass
class PlanEntry:
    """A cached plan template plus the guards that validate reuse."""

    plan: Any                       # SelectPlan, or a scan node for DML
    guards: List[ScanGuard] = field(default_factory=list)
    catalog_version: Any = 0        # the catalog's version_token
    # Stats freshness token of the last recost: hits skip the estimate
    # refresh entirely while every referenced table's token is unmoved.
    recost_token: Optional[Tuple] = None


class PlanCache:
    """Per-database LRU cache of plan templates (thread-safe)."""

    def __init__(self, capacity: int = 256, metrics=None):
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, PlanEntry]" = OrderedDict()
        self._lock = threading.Lock()
        # Counters on the unified registry (a process-shared cache keeps
        # its own private scope; per-node caches get the node scope).
        if metrics is None:
            from repro.obs.metrics import private_scope
            metrics = private_scope()
        self.metrics = metrics
        self._hits = metrics.counter("plancache.hits")
        self._misses = metrics.counter("plancache.misses")
        self._guard_failures = metrics.counter("plancache.guard_failures")
        self._evictions = metrics.counter("plancache.evictions")
        self._invalidations = metrics.counter("plancache.invalidations")
        metrics.gauge("plancache.size", fn=self.__len__)

    # Legacy counter attributes — views over the registry objects.
    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def guard_failures(self) -> int:
        return int(self._guard_failures.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @property
    def invalidations(self) -> int:
        return int(self._invalidations.value)

    # -- keying ------------------------------------------------------------

    @staticmethod
    def key_for(stmt: Statement, ctx: EvalContext, tx,
                catalog_version: Any,
                columnar_enabled: bool = False,
                stats_anchor: int = 0,
                cost_based: bool = True) -> Tuple:
        # AS OF statements additionally key on the *presence* of a
        # height pin and on whether columnar routing was available:
        # pinning changes the chosen operators (ColumnarScan vs heap
        # scans), and so does toggling the replica.  The height value
        # itself is deliberately NOT part of the key — templates are
        # height-free (operators read ``ctx.as_of_height`` per
        # execution), so `AS OF BLOCK $1` at a thousand heights, or a
        # dashboard pinning to every new committed height, reuses one
        # template instead of churning the LRU.
        #
        # ``stats_anchor`` is the committed height the planner's
        # statistics were pinned to: cost-based strategy choice reads
        # them, so templates are only ever reused at the anchor they
        # were costed at (all nodes at one height agree; a new block
        # simply re-plans).  ``cost_based`` keys the planning mode.
        as_of = getattr(ctx, "as_of_height", None)
        pinned = as_of is not None
        return (statement_fingerprint(stmt), context_shape(ctx),
                catalog_version, int(stats_anchor), bool(cost_based),
                bool(tx.require_index),
                bool(tx.provenance), bool(ctx.allow_nondeterministic),
                pinned, bool(columnar_enabled) if pinned else None)

    # -- lookup / store ----------------------------------------------------

    def get(self, key: Tuple, db, ctx: EvalContext
            ) -> Optional[Tuple[PlanEntry, Dict[int, Dict]]]:
        """Return a guard-validated ``(entry, bounds-by-scan-node)`` pair,
        or None (counting the miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self._misses.inc()
            return None
        scan_bounds = validate_guards(db.catalog, entry.guards, ctx)
        if scan_bounds is None:
            self._guard_failures.inc()
            self._misses.inc()
            return None
        refresh_row_estimates(db, entry, scan_bounds)
        self._hits.inc()
        return entry, scan_bounds

    def store(self, key: Tuple, entry: PlanEntry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions.inc()

    # -- invalidation ------------------------------------------------------

    def invalidate_for_version(self, current_version: Any) -> int:
        """Purge entries planned under an older catalog version token
        (they are unreachable anyway — the token is part of the key — but
        eager purging keeps the LRU from carrying dead weight).  Only
        wired for *private* caches: a process-shared cache must not purge
        on one node's bump while siblings still sit at the older token."""
        with self._lock:
            stale = [key for key, entry in self._entries.items()
                     if entry.catalog_version != current_version]
            for key in stale:
                del self._entries[key]
        self._invalidations.inc(len(stale))
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "guard_failures": self.guard_failures,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
