"""SQL executor: statement orchestration over the plan-based engine.

Statements execute in three stages:

1. the binder/planner (:mod:`repro.sql.planner`) turns the parsed AST
   into a physical operator tree, choosing index access paths and join
   strategies from catalog statistics;
2. the operator tree (:mod:`repro.sql.plan`) runs Volcano-style; the
   scan operators own the SSI responsibilities (SIREAD recording, the
   execute-order-in-parallel missing-index abort, the section 3.4.1
   phantom/stale window checks);
3. this module drives DML side effects (constraint checks, version
   creation, ww bookkeeping) and DDL against the catalog.

``EXPLAIN <stmt>`` returns the rendered physical plan as a one-column
result, so plans are observable and testable end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    AccessDenied,
    BlindUpdateError,
    ConstraintViolation,
    ExecutionError,
)
if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.mvcc.database import Database

from repro.mvcc.transaction import (
    PredicateRead,
    TransactionContext,
    WriteSetEntry,
)
from repro.sql.ast_nodes import (
    CreateFunction, CreateIndex, CreateTable, Delete, DropFunction,
    DropTable, Explain, Insert, Select, Statement, Update,
)
from repro.sql.catalog import (
    ColumnDef,
    TableSchema,
    coerce_value,
)
from repro.sql.expressions import (
    EvalContext,
    compiled,
    compiled_predicate,
)
from repro.sql.plan import (
    PROVENANCE_COLUMNS,
    Runtime,
    deinstrument_plan,
    instrument_plan,
    render_plan,
    window_checks,
)
from repro.sql.plancache import PlanCache, PlanEntry
from repro.sql.planner import QUERY_TIMINGS, Planner, SelectPlan, timed
from repro.storage.index import normalize_key
from repro.storage.visibility import version_visible

__all__ = [
    "AccessChecker", "Executor", "PROVENANCE_COLUMNS", "Result", "run_sql",
]


@dataclass
class Result:
    """Outcome of one statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple] = field(default_factory=list)
    rowcount: int = 0

    def scalar(self) -> Any:
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def _referenced_tables(stmt: Statement) -> set:
    """Every table a statement would read or write, including tables
    inside subqueries (used by EXPLAIN's access check)."""
    from repro.sql.ast_nodes import Expr, SubqueryExpr

    out: set = set()

    def visit_expr(expr: Optional[Expr]) -> None:
        if expr is None:
            return
        for node in expr.walk():
            if isinstance(node, SubqueryExpr):
                visit_select(node.select)

    def visit_select(sel: Select) -> None:
        if sel.from_table is not None:
            out.add(sel.from_table.name)
        for join in sel.joins:
            out.add(join.table.name)
            visit_expr(join.on)
        for item in sel.items:
            visit_expr(item.expr)
        visit_expr(sel.where)
        visit_expr(sel.having)
        for expr in sel.group_by:
            visit_expr(expr)
        for order in sel.order_by:
            visit_expr(order.expr)
        visit_expr(sel.limit)
        visit_expr(sel.offset)

    if isinstance(stmt, Select):
        visit_select(stmt)
    elif isinstance(stmt, Update):
        out.add(stmt.table)
        visit_expr(stmt.where)
        for clause in stmt.sets:
            visit_expr(clause.value)
    elif isinstance(stmt, Delete):
        out.add(stmt.table)
        visit_expr(stmt.where)
    elif isinstance(stmt, Insert):
        out.add(stmt.table)
        if stmt.select is not None:
            visit_select(stmt.select)
        for row in stmt.rows:
            for expr in row:
                visit_expr(expr)
    return out


class AccessChecker:
    """Interface for table-level access control (see node.access_control)."""

    def check_read(self, username: str, table: str) -> None:  # pragma: no cover
        return

    def check_write(self, username: str, table: str) -> None:  # pragma: no cover
        return


class Executor:
    """Statement driver bound to one database + one transaction.

    ``default_as_of`` pins every SELECT of this executor to a block
    height (the session-level time-travel API: ``node.query(sql,
    as_of=h)``); an explicit ``AS OF`` clause on a statement overrides
    it."""

    def __init__(self, database: "Database", tx: TransactionContext,
                 acl: Optional[AccessChecker] = None,
                 default_as_of: Optional[int] = None):
        self.db = database
        self.tx = tx
        self.acl = acl
        self.default_as_of = default_as_of
        # Depth of nested statement execution: correlated subqueries run
        # through this executor mid-statement and must not count (or
        # double-bill their time) as standalone statements in
        # QUERY_TIMINGS.
        self._stmt_depth = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, stmt: Statement, params: Sequence[Any] = (),
                variables: Optional[Dict[str, Any]] = None) -> Result:
        self.tx.check_active()
        ctx = EvalContext(
            params=list(params), variables=variables or {},
            allow_nondeterministic=self.tx.allow_nondeterministic,
            subquery_fn=self._run_subquery)
        if isinstance(stmt, Select):
            return self._execute_select(stmt, ctx)
        if isinstance(stmt, Insert):
            return self._execute_insert(stmt, ctx)
        if isinstance(stmt, Update):
            return self._execute_update(stmt, ctx)
        if isinstance(stmt, Delete):
            return self._execute_delete(stmt, ctx)
        if isinstance(stmt, Explain):
            return self._execute_explain(stmt, ctx)
        if isinstance(stmt, CreateTable):
            return self._execute_create_table(stmt, ctx)
        if isinstance(stmt, CreateIndex):
            return self._execute_create_index(stmt)
        if isinstance(stmt, DropTable):
            self._check_write(stmt.name, ddl=True)
            self.db.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
            return Result()
        if isinstance(stmt, (CreateFunction, DropFunction)):
            raise ExecutionError(
                "CREATE/DROP FUNCTION must go through the deployment "
                "system contracts (section 3.7)")
        raise ExecutionError(
            f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Access control helpers
    # ------------------------------------------------------------------

    def _check_read(self, table: str) -> None:
        if self.acl is not None:
            self.acl.check_read(self.tx.username, table)

    def _check_write(self, table: str, ddl: bool = False) -> None:
        if self.tx.read_only:
            raise ExecutionError(
                "cannot write in a read-only transaction")
        if self.acl is not None:
            self.acl.check_write(self.tx.username, table)

    def _runtime(self, ctx: EvalContext,
                 alias_columns: Dict[str, Sequence[str]],
                 scan_bounds: Optional[Dict[int, Dict]] = None) -> Runtime:
        return Runtime(db=self.db, tx=self.tx, ctx=ctx,
                       alias_columns=alias_columns,
                       check_read=self._check_read,
                       scan_bounds=scan_bounds)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _run_subquery(self, select: Select, outer_ctx: EvalContext
                      ) -> List[Tuple]:
        sub_ctx = EvalContext(
            variables=outer_ctx.variables, params=outer_ctx.params,
            allow_nondeterministic=outer_ctx.allow_nondeterministic,
            subquery_fn=self._run_subquery, outer=outer_ctx,
            as_of_height=outer_ctx.as_of_height)
        self._stmt_depth += 1
        try:
            return self._execute_select(select, sub_ctx).rows
        finally:
            self._stmt_depth -= 1

    # ------------------------------------------------------------------
    # AS OF resolution (time travel)
    # ------------------------------------------------------------------

    def _apply_as_of(self, stmt: Select, ctx: EvalContext) -> None:
        """Resolve the statement's time-travel pin into
        ``ctx.as_of_height``.

        Precedence: an explicit ``AS OF`` clause wins; otherwise a pin
        inherited from the enclosing query (subqueries read at the same
        height); otherwise the executor's ``default_as_of``.  A pinned
        height must name immutable, still-retained state: read-only
        session, at or below the committed height, at or above the
        vacuum retention horizon."""
        clause = stmt.as_of
        if clause is None:
            if ctx.as_of_height is not None:
                return  # inherited from the outer query, already checked
            if self.default_as_of is None:
                return
            height: Any = self.default_as_of
            latest = False
        elif clause.latest:
            height = None
            latest = True
        else:
            height = compiled(clause.block)(ctx)
            latest = False

        if self.tx.provenance:
            raise ExecutionError(
                "AS OF cannot be combined with PROVENANCE (provenance "
                "sessions already see every committed version)")
        if not self.tx.read_only:
            raise ExecutionError(
                "AS OF queries require a read-only session: historical "
                "state is immutable and executes outside SSI")
        committed = self.db.committed_height
        if latest:
            height = committed
        if height is None:
            raise ExecutionError("AS OF BLOCK height must not be NULL")
        # Strict typing: a fractional height silently truncating (or a
        # string/boolean coercing) would read the *wrong* historical
        # state without any diagnostic.
        if isinstance(height, bool) or not isinstance(height, (int, float)):
            raise ExecutionError(
                f"AS OF BLOCK height must be an integer, got "
                f"{height!r}")
        if isinstance(height, float):
            if not height.is_integer():
                raise ExecutionError(
                    f"AS OF BLOCK height must be an integer, got "
                    f"{height!r}")
            height = int(height)
        if height < 0:
            raise ExecutionError(
                f"AS OF BLOCK height must not be negative, got {height}")
        if height > committed:
            raise ExecutionError(
                f"AS OF BLOCK {height} is above this node's committed "
                f"height {committed} (cannot read the future)")
        retained = getattr(self.db, "retained_height", 0)
        if height < retained:
            raise ExecutionError(
                f"AS OF BLOCK {height} precedes the vacuum retention "
                f"horizon {retained}: that history has been pruned")
        ctx.as_of_height = height

    def _plan_select_cached(self, stmt: Select, ctx: EvalContext
                            ) -> Tuple[SelectPlan, bool, Optional[Dict]]:
        """Fetch a guard-validated plan template from the statement
        cache, or plan and cache a fresh one.  Returns
        (plan, hit, bounds-by-scan-node from guard validation)."""
        self._apply_as_of(stmt, ctx)
        cache = self.db.plan_cache
        version = self.db.catalog.version_token
        key = PlanCache.key_for(
            stmt, ctx, self.tx, version, self.db.columnstore.enabled,
            stats_anchor=self.db.stats.anchor,
            cost_based=getattr(self.db, "cost_based_planning", True))
        got = cache.get(key, self.db, ctx)
        if got is not None:
            entry, scan_bounds = got
            return entry.plan, True, scan_bounds
        planner = Planner(self.db, self.tx)
        plan = planner.plan_select(stmt, ctx)
        cache.store(key, PlanEntry(plan=plan, guards=plan.guards,
                                   catalog_version=version))
        return plan, False, planner.scan_bounds

    def _execute_select(self, stmt: Select, ctx: EvalContext) -> Result:
        if stmt.provenance and not self.tx.provenance:
            raise AccessDenied(
                "PROVENANCE SELECT requires a provenance session")
        with timed() as plan_t:
            plan, cache_hit, scan_bounds = \
                self._plan_select_cached(stmt, ctx)
        with timed() as exec_t:
            rt = self._runtime(ctx, plan.alias_columns, scan_bounds)
            output = [row for _, row in plan.root.rows(rt)]
        if self._stmt_depth == 0:
            QUERY_TIMINGS.record(plan_t.seconds, exec_t.seconds,
                                 cache_hit=cache_hit)
            threshold = getattr(self.db, "slow_query_threshold_ms", 0.0)
            if threshold and (plan_t.seconds + exec_t.seconds) * 1e3 \
                    >= threshold:
                # Structured slow-query log: observability-only (the
                # planner never reads it back), so wall-clock here
                # cannot perturb determinism.
                self.db.note_slow_query({
                    "kind": "select",
                    "plan": plan.root.describe(),
                    "plan_ms": round(plan_t.seconds * 1e3, 3),
                    "exec_ms": round(exec_t.seconds * 1e3, 3),
                    "rows": len(output),
                    "cache_hit": cache_hit,
                })
        return Result(columns=plan.columns, rows=output,
                      rowcount=len(output))

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------

    def _execute_explain(self, stmt: Explain, ctx: EvalContext) -> Result:
        # A plan reveals schema, index names and row estimates — require
        # the same read access the statement itself would.
        for table in sorted(_referenced_tables(stmt.statement)):
            self._check_read(table)
        inner = stmt.statement
        if stmt.analyze:
            return self._execute_explain_analyze(inner, ctx)
        cache_note = "bypass"
        if isinstance(inner, Select):
            plan, hit, _ = self._plan_select_cached(inner, ctx)
            lines = plan.explain()
            cache_note = "hit" if hit else "miss"
        elif isinstance(inner, (Update, Delete)):
            verb = "Update" if isinstance(inner, Update) else "Delete"
            scan, hit, _ = self._plan_dml_scan_cached(inner, ctx)
            lines = [f"{verb} on {inner.table}"]
            render_plan(scan, depth=1, lines=lines)
            cache_note = "hit" if hit else "miss"
        elif isinstance(inner, Insert):
            lines = [f"Insert on {inner.table}"]
            if inner.select is not None:
                plan, hit, _ = self._plan_select_cached(inner.select, ctx)
                render_plan(plan.root, depth=1, lines=lines)
                cache_note = "hit" if hit else "miss"
            else:
                lines.append(f"  -> Values ({len(inner.rows)} row"
                             f"{'s' if len(inner.rows) != 1 else ''})")
        else:
            raise ExecutionError(
                f"EXPLAIN does not support {type(inner).__name__}")
        lines.append(f"Plan Cache: {cache_note}")
        return Result(columns=["QUERY PLAN"],
                      rows=[(line,) for line in lines],
                      rowcount=len(lines))

    def _execute_explain_analyze(self, inner: Statement,
                                 ctx: EvalContext) -> Result:
        """EXPLAIN ANALYZE: execute the statement and render the plan
        with per-operator actual rows / loops / wall time.

        SELECT only — executing DML under EXPLAIN would mutate state.
        The instrumentation wraps operator iterators at instance level
        for the duration of this one execution and is removed in a
        ``finally`` (the plan template may live in a shared cache); the
        SSI side effects of the run are exactly a normal SELECT's.
        """
        if not isinstance(inner, Select):
            raise ExecutionError(
                f"EXPLAIN ANALYZE supports only SELECT (executing "
                f"{type(inner).__name__} under EXPLAIN would modify "
                f"data)")
        with timed() as plan_t:
            plan, hit, scan_bounds = self._plan_select_cached(inner, ctx)
        stats = instrument_plan(plan.root)
        try:
            with timed() as exec_t:
                rt = self._runtime(ctx, plan.alias_columns, scan_bounds)
                rt.probe_stats = stats
                for _ in plan.root.rows(rt):
                    pass        # actuals accumulate in ``stats``
        finally:
            deinstrument_plan(plan.root)
        lines = render_plan(plan.root, stats=stats)
        lines.append(f"Plan Cache: {'hit' if hit else 'miss'}")
        lines.append(f"Planning Time: {plan_t.seconds * 1e3:.3f} ms")
        lines.append(f"Execution Time: {exec_t.seconds * 1e3:.3f} ms")
        return Result(columns=["QUERY PLAN"],
                      rows=[(line,) for line in lines],
                      rowcount=len(lines))

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------

    def _execute_insert(self, stmt: Insert, ctx: EvalContext) -> Result:
        self._check_write(stmt.table)
        schema = self.db.catalog.schema_of(stmt.table)
        heap = self.db.catalog.heap_of(stmt.table)

        if stmt.select is not None:
            sub = self._execute_select(stmt.select, ctx)
            rows_values = [list(row) for row in sub.rows]
        else:
            rows_values = [[compiled(expr)(ctx) for expr in row]
                           for row in stmt.rows]

        columns = stmt.columns or schema.column_names()
        inserted = 0
        for raw in rows_values:
            if len(raw) != len(columns):
                raise ExecutionError(
                    f"INSERT has {len(raw)} values for {len(columns)} "
                    f"columns")
            values: Dict[str, Any] = dict(zip(columns, raw))
            self._apply_defaults_and_validate(schema, values, ctx)
            self._check_unique(schema, heap, values, exclude_row=None)
            version = heap.insert_version(values, self.tx.xid)
            self.tx.record_write(WriteSetEntry(
                table=stmt.table, kind="insert", new_version=version))
            inserted += 1
        return Result(rowcount=inserted)

    def _apply_defaults_and_validate(self, schema: TableSchema,
                                     values: Dict[str, Any],
                                     ctx: EvalContext) -> None:
        for col in schema.columns:
            if col.name not in values or values[col.name] is None:
                if col.default is not None and col.name not in values:
                    values[col.name] = compiled(col.default)(ctx)
                else:
                    values.setdefault(col.name, None)
            if values[col.name] is not None:
                values[col.name] = coerce_value(
                    values[col.name], col.type_name, col.name)
            elif col.not_null:
                raise ConstraintViolation(
                    f"column {col.name!r} of {schema.name!r} is NOT NULL",
                    constraint="not_null", table=schema.name)
        unknown = set(values) - set(schema.column_names())
        if unknown:
            raise ExecutionError(
                f"unknown column(s) {sorted(unknown)} for {schema.name!r}")
        self._check_checks(schema, values, ctx)

    def _check_checks(self, schema: TableSchema, values: Dict[str, Any],
                      ctx: EvalContext) -> None:
        row_ctx = ctx.child_for_row({schema.name: values})
        for col in schema.columns:
            if col.check is not None:
                if compiled(col.check)(row_ctx) is False:
                    raise ConstraintViolation(
                        f"check constraint on column {col.name!r} failed",
                        constraint="check", table=schema.name)
        for check in schema.checks:
            if compiled(check)(row_ctx) is False:
                raise ConstraintViolation(
                    f"table check constraint on {schema.name!r} failed",
                    constraint="check", table=schema.name)

    def _check_unique(self, schema: TableSchema, heap, values: Dict[str, Any],
                      exclude_row: Optional[int]) -> None:
        for index in heap.indexes.values():
            if not index.unique:
                continue
            key_values = [values.get(c) for c in index.columns]
            if any(v is None for v in key_values):
                continue
            candidate_ids = index.scan_eq(key_values)
            candidates = heap.resolve(candidate_ids)
            low = high = normalize_key(key_values)
            self.tx.record_predicate_read(PredicateRead(
                table=schema.name, columns=index.columns,
                low_key=low, high_key=high))
            rt = self._runtime(EvalContext(), {})
            window_checks(rt, schema.name, candidates)
            for version in candidates:
                if exclude_row is not None and \
                        version.row_id == exclude_row:
                    continue
                if version_visible(version, self.tx.snapshot,
                                   self.db.statuses, self.tx.xid):
                    raise ConstraintViolation(
                        f"duplicate key value violates unique constraint "
                        f"{index.name!r}", constraint=index.name,
                        table=schema.name)

    # ------------------------------------------------------------------
    # UPDATE / DELETE
    # ------------------------------------------------------------------

    def _plan_dml_scan_cached(self, stmt, ctx: EvalContext):
        """Cached access-path template for an UPDATE/DELETE target table
        (same key structure and guard validation as SELECT plans).
        Returns (scan node, hit, bounds-by-scan-node)."""
        table = stmt.table
        schema = self.db.catalog.schema_of(table)
        alias_columns = {table: schema.column_names()}
        cache = self.db.plan_cache
        version = self.db.catalog.version_token
        key = PlanCache.key_for(
            stmt, ctx, self.tx, version,
            stats_anchor=self.db.stats.anchor,
            cost_based=getattr(self.db, "cost_based_planning", True))
        got = cache.get(key, self.db, ctx)
        if got is not None:
            entry, scan_bounds = got
            return entry.plan, True, scan_bounds
        planner = Planner(self.db, self.tx)
        scan = planner.plan_scan(table, table, stmt.where, ctx,
                                 alias_columns)
        cache.store(key, PlanEntry(plan=scan, guards=planner.guards,
                                   catalog_version=version))
        return scan, False, planner.scan_bounds

    def _plan_target_scan(self, stmt, ctx: EvalContext):
        """Plan + run the access path for an UPDATE/DELETE target table,
        returning (schema, heap, scan rows with versions)."""
        table = stmt.table
        schema = self.db.catalog.schema_of(table)
        heap = self.db.catalog.heap_of(table)
        alias_columns = {table: schema.column_names()}
        with timed() as plan_t:
            scan, cache_hit, scan_bounds = \
                self._plan_dml_scan_cached(stmt, ctx)
        with timed() as exec_t:
            targets = scan.scan_rows(
                self._runtime(ctx, alias_columns, scan_bounds))
        QUERY_TIMINGS.record(plan_t.seconds, exec_t.seconds,
                             cache_hit=cache_hit)
        return schema, heap, targets

    def _execute_update(self, stmt: Update, ctx: EvalContext) -> Result:
        self._check_write(stmt.table)
        if stmt.where is None and self.tx.forbid_blind_updates:
            raise BlindUpdateError(
                "blind updates are not supported in the "
                "execute-order-in-parallel flow (section 3.4.3)")
        schema, heap, targets = self._plan_target_scan(stmt, ctx)
        where_fn = compiled_predicate(stmt.where)
        set_fns = [(clause.column, compiled(clause.value))
                   for clause in stmt.sets]
        updated = 0
        for row in targets:
            row_ctx = ctx.child_for_row({stmt.table: row.values})
            if not where_fn(row_ctx):
                continue
            new_values = dict(row.values)
            for column, value_fn in set_fns:
                schema.column(column)  # validates existence, per old path
                new_values[column] = value_fn(row_ctx)
            self._apply_defaults_and_validate(schema, new_values, ctx)
            self._check_unique(schema, heap, new_values,
                               exclude_row=row.version.row_id)
            new_version = heap.update_version(row.version, new_values,
                                              self.tx.xid)
            self.tx.record_write(WriteSetEntry(
                table=stmt.table, kind="update",
                old_version=row.version, new_version=new_version))
            updated += 1
        return Result(rowcount=updated)

    def _execute_delete(self, stmt: Delete, ctx: EvalContext) -> Result:
        self._check_write(stmt.table)
        if stmt.where is None and self.tx.forbid_blind_updates:
            raise BlindUpdateError(
                "blind deletes are not supported in the "
                "execute-order-in-parallel flow (section 3.4.3)")
        schema, heap, targets = self._plan_target_scan(stmt, ctx)
        where_fn = compiled_predicate(stmt.where)
        deleted = 0
        for row in targets:
            row_ctx = ctx.child_for_row({stmt.table: row.values})
            if not where_fn(row_ctx):
                continue
            heap.delete_version(row.version, self.tx.xid)
            self.tx.record_write(WriteSetEntry(
                table=stmt.table, kind="delete", old_version=row.version))
            deleted += 1
        return Result(rowcount=deleted)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _execute_create_table(self, stmt: CreateTable,
                              ctx: EvalContext) -> Result:
        self._check_write(stmt.name, ddl=True)
        columns = [ColumnDef(name=c.name, type_name=c.type_name,
                             not_null=c.not_null or c.primary_key,
                             default=c.default, check=c.check)
                   for c in stmt.columns]
        unique = [[c.name] for c in stmt.columns if c.unique]
        schema = TableSchema(name=stmt.name, columns=columns,
                             primary_key=list(stmt.primary_key),
                             unique_constraints=unique,
                             checks=list(stmt.checks))
        self.db.catalog.create_table(schema,
                                     if_not_exists=stmt.if_not_exists)
        return Result()

    def _execute_create_index(self, stmt: CreateIndex) -> Result:
        self._check_write(stmt.table, ddl=True)
        self.db.catalog.create_index(stmt.name, stmt.table, stmt.columns,
                                     unique=stmt.unique,
                                     if_not_exists=stmt.if_not_exists)
        return Result()


def run_sql(database: "Database", tx: TransactionContext, sql: str,
            params: Sequence[Any] = (),
            variables: Optional[Dict[str, Any]] = None,
            acl: Optional[AccessChecker] = None) -> Result:
    """Parse and execute a ;-separated SQL script; returns the last
    statement's result."""
    from repro.sql.parser import parse_sql

    executor = Executor(database, tx, acl=acl)
    result = Result()
    for stmt in parse_sql(sql):
        result = executor.execute(stmt, params=params, variables=variables)
    return result
