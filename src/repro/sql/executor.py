"""SQL executor.

Interprets parsed statements against a :class:`repro.mvcc.database.Database`
within a :class:`TransactionContext`.  Responsibilities beyond plain SQL
evaluation:

* **SIREAD recording** — every row read and every predicate (index-range)
  read is recorded on the transaction, feeding the SSI validators.
* **Index-backed predicate enforcement** — under the execute-order-in-
  parallel flow, a scan without a usable index aborts the transaction
  (paper section 4.3).
* **Phantom / stale-read detection at snapshot height** — when a
  transaction runs at a block height below the node's current committed
  height, scans inspect the committed window between the two and abort on
  the paper's two rules (section 3.4.1).
* **ww bookkeeping** — updates/deletes mark xmax candidates on old
  versions; the serial commit step resolves winners.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    AccessDenied,
    BlindUpdateError,
    ConstraintViolation,
    ExecutionError,
    MissingIndexError,
    SerializationFailure,
    SQLError,
)
if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.mvcc.database import Database

from repro.mvcc.transaction import (
    PredicateRead,
    TransactionContext,
    WriteSetEntry,
)
from repro.sql import functions
from repro.sql.ast_nodes import (
    Between, BinaryOp, ColumnRef, CreateFunction, CreateIndex, CreateTable,
    Delete, DropFunction, DropTable, Expr, FunctionCall, InList, Insert,
    Join, Like, Literal, OrderItem, Param, Select, SelectItem, Star,
    Statement, SubqueryExpr, TableRef, UnaryOp, Update,
)
from repro.sql.catalog import (
    Catalog,
    ColumnDef,
    TableSchema,
    coerce_value,
)
from repro.sql.expressions import (
    EvalContext,
    compare_values,
    evaluate,
    evaluate_predicate,
    expr_fingerprint,
)
from repro.storage.index import Index, normalize_key
from repro.storage.row import RowVersion
from repro.storage.snapshot import BlockSnapshot
from repro.storage.visibility import (
    version_committed_in_window,
    version_deleted_in_window,
    version_visible,
)

PROVENANCE_COLUMNS = ("xmin", "xmax", "creator", "deleter", "row_id")


@dataclass
class Result:
    """Outcome of one statement."""

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple] = field(default_factory=list)
    rowcount: int = 0

    def scalar(self) -> Any:
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class _ScanRow:
    values: Dict[str, Any]
    version: Optional[RowVersion]


class AccessChecker:
    """Interface for table-level access control (see node.access_control)."""

    def check_read(self, username: str, table: str) -> None:  # pragma: no cover
        return

    def check_write(self, username: str, table: str) -> None:  # pragma: no cover
        return


class Executor:
    """Statement interpreter bound to one database + one transaction."""

    def __init__(self, database: "Database", tx: TransactionContext,
                 acl: Optional[AccessChecker] = None):
        self.db = database
        self.tx = tx
        self.acl = acl

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, stmt: Statement, params: Sequence[Any] = (),
                variables: Optional[Dict[str, Any]] = None) -> Result:
        self.tx.check_active()
        ctx = EvalContext(
            params=list(params), variables=variables or {},
            allow_nondeterministic=self.tx.allow_nondeterministic,
            subquery_fn=self._run_subquery)
        if isinstance(stmt, Select):
            return self._execute_select(stmt, ctx)
        if isinstance(stmt, Insert):
            return self._execute_insert(stmt, ctx)
        if isinstance(stmt, Update):
            return self._execute_update(stmt, ctx)
        if isinstance(stmt, Delete):
            return self._execute_delete(stmt, ctx)
        if isinstance(stmt, CreateTable):
            return self._execute_create_table(stmt, ctx)
        if isinstance(stmt, CreateIndex):
            return self._execute_create_index(stmt)
        if isinstance(stmt, DropTable):
            self._check_write(stmt.name, ddl=True)
            self.db.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
            return Result()
        if isinstance(stmt, (CreateFunction, DropFunction)):
            raise ExecutionError(
                "CREATE/DROP FUNCTION must go through the deployment "
                "system contracts (section 3.7)")
        raise ExecutionError(
            f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # Access control helpers
    # ------------------------------------------------------------------

    def _check_read(self, table: str) -> None:
        if self.acl is not None:
            self.acl.check_read(self.tx.username, table)

    def _check_write(self, table: str, ddl: bool = False) -> None:
        if self.tx.read_only:
            raise ExecutionError(
                "cannot write in a read-only transaction")
        if self.acl is not None:
            self.acl.check_write(self.tx.username, table)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def _sargable_conditions(self, where: Optional[Expr], alias: str,
                             ctx: EvalContext) -> Dict[str, Dict[str, Any]]:
        """Extract per-column bounds from AND-ed conjuncts of ``where`` that
        constrain columns of ``alias`` against values computable without the
        row (literals, params, PL variables, outer-row columns).

        Returns ``{column: {"eq": v} | {"low": (v, incl), "high": (v, incl)}}``.
        """
        bounds: Dict[str, Dict[str, Any]] = {}
        if where is None:
            return bounds
        for conjunct in self._conjuncts(where):
            self._extract_bound(conjunct, alias, ctx, bounds)
        return bounds

    def _conjuncts(self, expr: Expr) -> List[Expr]:
        if isinstance(expr, BinaryOp) and expr.op == "AND":
            return self._conjuncts(expr.left) + self._conjuncts(expr.right)
        return [expr]

    def _try_eval_const(self, expr: Expr, ctx: EvalContext) -> Tuple[bool, Any]:
        """Evaluate ``expr`` if it does not depend on the scanned row."""
        for node in expr.walk():
            if isinstance(node, Star):
                return False, None
            if isinstance(node, FunctionCall) and \
                    node.name in functions.AGGREGATE_NAMES:
                return False, None
            if isinstance(node, SubqueryExpr):
                return False, None
            if isinstance(node, ColumnRef):
                # Resolvable only via outer env or variables.
                try:
                    evaluate(node, ctx)
                except SQLError:
                    return False, None
        try:
            return True, evaluate(expr, ctx)
        except SQLError:
            return False, None

    def _column_of_alias(self, expr: Expr, alias: str,
                         table_columns: Sequence[str]) -> Optional[str]:
        if not isinstance(expr, ColumnRef):
            return None
        if expr.table is not None and expr.table != alias:
            return None
        if expr.table is None and expr.name not in table_columns:
            return None
        return expr.name

    def _extract_bound(self, conjunct: Expr, alias: str, ctx: EvalContext,
                       bounds: Dict[str, Dict[str, Any]]) -> None:
        schema_cols = self._alias_columns.get(alias, ())
        if isinstance(conjunct, BinaryOp) and conjunct.op in {
                "=", "<", "<=", ">", ">="}:
            col = self._column_of_alias(conjunct.left, alias, schema_cols)
            other = conjunct.right
            op = conjunct.op
            if col is None:
                col = self._column_of_alias(conjunct.right, alias,
                                            schema_cols)
                other = conjunct.left
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if col is None:
                return
            ok, value = self._try_eval_const(other, ctx)
            if not ok or value is None:
                return
            slot = bounds.setdefault(col, {})
            if op == "=":
                slot["eq"] = value
            elif op in {"<", "<="}:
                slot["high"] = (value, op == "<=")
            else:
                slot["low"] = (value, op == ">=")
            return
        if isinstance(conjunct, Between) and not conjunct.negated:
            col = self._column_of_alias(conjunct.operand, alias, schema_cols)
            if col is None:
                return
            ok_low, low = self._try_eval_const(conjunct.low, ctx)
            ok_high, high = self._try_eval_const(conjunct.high, ctx)
            if ok_low and low is not None:
                bounds.setdefault(col, {})["low"] = (low, True)
            if ok_high and high is not None:
                bounds.setdefault(col, {})["high"] = (high, True)
            return
        if isinstance(conjunct, InList) and not conjunct.negated:
            # IN (a, b, c) is not a contiguous range; treat as a min/max
            # bound for index pruning (exact filtering happens later).
            col = self._column_of_alias(conjunct.operand, alias, schema_cols)
            if col is None:
                return
            values = []
            for item in conjunct.items:
                ok, value = self._try_eval_const(item, ctx)
                if not ok or value is None:
                    return
                values.append(value)
            if values:
                try:
                    bounds.setdefault(col, {})["low"] = (min(values), True)
                    bounds.setdefault(col, {})["high"] = (max(values), True)
                except TypeError:
                    return

    _alias_columns: Dict[str, Sequence[str]] = {}

    def _choose_index(self, heap, bounds: Dict[str, Dict[str, Any]]
                      ) -> Optional[Tuple[Index, List[Any], Optional[Tuple],
                                          Optional[Tuple], bool, bool]]:
        """Pick the index binding the most leading columns.

        Returns (index, eq_prefix, low_key, high_key, low_incl, high_incl)
        or None.
        """
        best = None
        best_score = 0
        for index in heap.indexes.values():
            eq_prefix: List[Any] = []
            for col in index.columns:
                slot = bounds.get(col)
                if slot and "eq" in slot:
                    eq_prefix.append(slot["eq"])
                else:
                    break
            score = len(eq_prefix) * 2
            range_low = range_high = None
            low_incl = high_incl = True
            next_pos = len(eq_prefix)
            if next_pos < len(index.columns):
                slot = bounds.get(index.columns[next_pos])
                if slot and ("low" in slot or "high" in slot):
                    score += 1
                    if "low" in slot:
                        range_low, low_incl = slot["low"]
                    if "high" in slot:
                        range_high, high_incl = slot["high"]
            if score > best_score:
                best_score = score
                best = (index, eq_prefix, range_low, range_high,
                        low_incl, high_incl)
        if best is None:
            return None
        index, eq_prefix, range_low, range_high, low_incl, high_incl = best
        low_vals = list(eq_prefix)
        high_vals = list(eq_prefix)
        if range_low is not None:
            low_vals.append(range_low)
        if range_high is not None:
            high_vals.append(range_high)
        low_key = normalize_key(low_vals) if low_vals else None
        high_key = normalize_key(high_vals) if high_vals else None
        return (index, eq_prefix, low_key, high_key, low_incl, high_incl)

    def _scan(self, table_name: str, alias: str, where: Optional[Expr],
              ctx: EvalContext) -> List[_ScanRow]:
        """Scan ``table_name`` returning visible rows, recording SIREAD
        state and running the EO-flow phantom/stale checks."""
        self._check_read(table_name)
        schema = self.db.catalog.schema_of(table_name)
        heap = self.db.catalog.heap_of(table_name)
        self._alias_columns = dict(self._alias_columns)
        self._alias_columns[alias] = schema.column_names()

        bounds = self._sargable_conditions(where, alias, ctx)
        choice = self._choose_index(heap, bounds)

        if choice is not None:
            index, eq_prefix, low_key, high_key, low_incl, high_incl = choice
            depth = max(len(low_key or ()), len(high_key or ()), 1)
            candidate_ids = index._scan(low_key, high_key, low_incl,
                                        high_incl, depth)
            candidates = heap.resolve(candidate_ids)
            predicate = PredicateRead(
                table=table_name,
                columns=index.columns[:depth],
                low_key=low_key, high_key=high_key,
                low_inclusive=low_incl, high_inclusive=high_incl)
        else:
            if self.tx.require_index and not schema.system \
                    and not self.tx.provenance:
                raise MissingIndexError(
                    f"no index supports the predicate on {table_name!r}; "
                    f"the execute-order-in-parallel flow requires "
                    f"index-backed predicate reads")
            candidates = heap.all_versions()
            predicate = PredicateRead(table=table_name, columns=())
        self.tx.record_predicate_read(predicate)

        self._window_checks(table_name, candidates)

        rows: List[_ScanRow] = []
        for version in candidates:
            if self.tx.provenance:
                if not self._provenance_visible(version):
                    continue
                values = dict(version.values)
                for key, val in version.provenance_header().items():
                    values.setdefault(key, val)
                rows.append(_ScanRow(values=values, version=version))
            else:
                if not version_visible(version, self.tx.snapshot,
                                       self.db.statuses, self.tx.xid):
                    continue
                self.tx.record_row_read(table_name, version)
                rows.append(_ScanRow(values=dict(version.values),
                                     version=version))
        # Deterministic logical order: physical version ids differ across
        # nodes (aborted executions burn ids), and float aggregation is
        # order-sensitive — sort by row content so every node folds
        # aggregates identically.
        rows.sort(key=lambda r: repr(sorted(r.values.items(),
                                            key=lambda kv: kv[0])))
        return rows

    def _provenance_visible(self, version: RowVersion) -> bool:
        """Provenance queries see every *committed* version, active or dead
        (section 4.2)."""
        return self.db.statuses.is_committed(version.xmin)

    def _window_checks(self, table_name: str,
                       candidates: List[RowVersion]) -> None:
        """Paper section 3.4.1: when executing below the node's committed
        height, a predicate-matching row created (phantom) or deleted
        (stale) in the window aborts the transaction."""
        snapshot = self.tx.snapshot
        if not isinstance(snapshot, BlockSnapshot) or self.tx.provenance:
            return
        current = self.db.committed_height
        if current <= snapshot.height:
            return
        for version in candidates:
            if version_committed_in_window(version, self.db.statuses,
                                           snapshot.height, current):
                if version.deleter_block is None:
                    raise SerializationFailure(
                        f"phantom read on {table_name!r}: row created at "
                        f"block {version.creator_block} > snapshot height "
                        f"{snapshot.height}", reason="phantom-read")
            if version_deleted_in_window(version, self.db.statuses,
                                         snapshot.height, current):
                raise SerializationFailure(
                    f"stale read on {table_name!r}: row deleted at block "
                    f"{version.deleter_block} > snapshot height "
                    f"{snapshot.height}", reason="stale-read")

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _run_subquery(self, select: Select, outer_ctx: EvalContext
                      ) -> List[Tuple]:
        sub_ctx = EvalContext(
            variables=outer_ctx.variables, params=outer_ctx.params,
            allow_nondeterministic=outer_ctx.allow_nondeterministic,
            subquery_fn=self._run_subquery, outer=outer_ctx)
        saved_alias_columns = self._alias_columns
        try:
            result = self._execute_select(select, sub_ctx)
        finally:
            self._alias_columns = saved_alias_columns
        return result.rows

    def _execute_select(self, stmt: Select, ctx: EvalContext) -> Result:
        if stmt.provenance and not self.tx.provenance:
            raise AccessDenied(
                "PROVENANCE SELECT requires a provenance session")
        env_rows = self._build_from_rows(stmt, ctx)
        self._rewrite_order_by_aliases(stmt)

        # WHERE
        filtered: List[Dict[str, Dict[str, Any]]] = []
        for env in env_rows:
            row_ctx = ctx.child_for_row(env)
            if evaluate_predicate(stmt.where, row_ctx):
                filtered.append(env)

        aggregates = self._collect_aggregates(stmt)
        if stmt.group_by or aggregates:
            return self._grouped_select(stmt, ctx, filtered, aggregates)
        return self._plain_select(stmt, ctx, filtered)

    def _build_from_rows(self, stmt: Select, ctx: EvalContext
                         ) -> List[Dict[str, Dict[str, Any]]]:
        if stmt.from_table is None:
            return [{}]
        self._alias_columns = {}
        base_rows = self._scan(stmt.from_table.name, stmt.from_table.alias,
                               stmt.where, ctx)
        env_rows = [{stmt.from_table.alias: row.values} for row in base_rows]
        for join in stmt.joins:
            env_rows = self._apply_join(join, env_rows, stmt.where, ctx)
        return env_rows

    def _apply_join(self, join: Join,
                    env_rows: List[Dict[str, Dict[str, Any]]],
                    where: Optional[Expr], ctx: EvalContext
                    ) -> List[Dict[str, Dict[str, Any]]]:
        alias = join.table.alias
        schema = self.db.catalog.schema_of(join.table.name)
        null_row = {col: None for col in schema.column_names()}
        out: List[Dict[str, Dict[str, Any]]] = []
        for env in env_rows:
            # Conditions usable for the inner index lookup may come from the
            # ON clause and from the WHERE clause.
            combined = join.on
            if where is not None:
                combined = (where if combined is None
                            else BinaryOp("AND", combined, where))
            row_ctx = ctx.child_for_row(env)
            inner_rows = self._scan(join.table.name, alias, combined,
                                    row_ctx)
            matched = False
            for inner in inner_rows:
                candidate_env = {**env, alias: inner.values}
                cand_ctx = ctx.child_for_row(candidate_env)
                if join.on is None or evaluate_predicate(join.on, cand_ctx):
                    matched = True
                    out.append(candidate_env)
            if join.kind == "LEFT" and not matched:
                out.append({**env, alias: dict(null_row)})
        return out

    def _rewrite_order_by_aliases(self, stmt: Select) -> None:
        """ORDER BY may reference select-list aliases (``SELECT sum(v) AS
        total ... ORDER BY total``); rewrite those refs to the aliased
        expression.  Real columns shadow aliases."""
        aliases = {item.alias: item.expr for item in stmt.items
                   if item.alias is not None}
        if not aliases:
            return
        known_columns = {col for cols in self._alias_columns.values()
                         for col in cols}
        for order in stmt.order_by:
            expr = order.expr
            if isinstance(expr, ColumnRef) and expr.table is None \
                    and expr.name in aliases \
                    and expr.name not in known_columns:
                order.expr = aliases[expr.name]

    def _collect_aggregates(self, stmt: Select) -> List[FunctionCall]:
        found: List[FunctionCall] = []
        seen = set()

        def visit(expr: Optional[Expr]):
            if expr is None:
                return
            for node in expr.walk():
                if isinstance(node, FunctionCall) and \
                        node.name in functions.AGGREGATE_NAMES:
                    key = expr_fingerprint(node)
                    if key not in seen:
                        seen.add(key)
                        found.append(node)

        for item in stmt.items:
            visit(item.expr)
        visit(stmt.having)
        for order in stmt.order_by:
            visit(order.expr)
        return found

    def _compute_aggregate(self, call: FunctionCall,
                           group: List[Dict[str, Dict[str, Any]]],
                           ctx: EvalContext) -> Any:
        if call.star:
            if call.name != "count":
                raise ExecutionError(f"{call.name}(*) is not valid")
            return len(group)
        if len(call.args) != 1:
            raise ExecutionError(
                f"aggregate {call.name}() takes exactly one argument")
        values = []
        for env in group:
            row_ctx = ctx.child_for_row(env)
            value = evaluate(call.args[0], row_ctx)
            if value is not None:
                values.append(value)
        if call.distinct:
            unique = []
            for value in values:
                if not any(compare_values(value, u) == 0 for u in unique):
                    unique.append(value)
            values = unique
        if call.name == "count":
            return len(values)
        if not values:
            return None
        if call.name == "sum":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total
        if call.name == "avg":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total / len(values)
        if call.name == "min":
            return functools.reduce(
                lambda a, b: a if compare_values(a, b) <= 0 else b, values)
        if call.name == "max":
            return functools.reduce(
                lambda a, b: a if compare_values(a, b) >= 0 else b, values)
        raise ExecutionError(f"unknown aggregate {call.name!r}")

    def _grouped_select(self, stmt: Select, ctx: EvalContext,
                        env_rows: List[Dict[str, Dict[str, Any]]],
                        aggregates: List[FunctionCall]) -> Result:
        # Partition rows into groups by the GROUP BY key.
        groups: List[Tuple[Tuple, List[Dict[str, Dict[str, Any]]]]] = []
        group_index: Dict[str, int] = {}
        for env in env_rows:
            row_ctx = ctx.child_for_row(env)
            key = tuple(evaluate(g, row_ctx) for g in stmt.group_by)
            fingerprint = repr(key)
            pos = group_index.get(fingerprint)
            if pos is None:
                group_index[fingerprint] = len(groups)
                groups.append((key, [env]))
            else:
                groups[pos][1].append(env)
        if not groups and not stmt.group_by:
            groups = [((), [])]  # global aggregate over empty input

        out_rows: List[Tuple[Tuple, Dict[str, Any],
                             Dict[str, Dict[str, Any]]]] = []
        for key, members in groups:
            agg_values: Dict[str, Any] = {}
            for call in aggregates:
                agg_values[expr_fingerprint(call)] = \
                    self._compute_aggregate(call, members, ctx)
            representative = members[0] if members else {}
            row_ctx = ctx.child_for_row(representative)
            row_ctx.aggregate_values = agg_values
            if stmt.having is not None and \
                    not evaluate_predicate(stmt.having, row_ctx):
                continue
            out_rows.append((key, agg_values, representative))

        columns = self._output_columns(stmt)
        final: List[Tuple[Tuple, Tuple]] = []  # (order keys, output)
        for key, agg_values, representative in out_rows:
            row_ctx = ctx.child_for_row(representative)
            row_ctx.aggregate_values = agg_values
            output = tuple(self._project_item(item, row_ctx)
                           for item in stmt.items)
            order_keys = tuple(evaluate(o.expr, row_ctx)
                               for o in stmt.order_by)
            final.append((order_keys, output))
        return self._finalize(stmt, ctx, columns, final)

    def _plain_select(self, stmt: Select, ctx: EvalContext,
                      env_rows: List[Dict[str, Dict[str, Any]]]
                      ) -> Result:
        columns = self._output_columns(stmt)
        final: List[Tuple[Tuple, Tuple]] = []
        for env in env_rows:
            row_ctx = ctx.child_for_row(env)
            output: List[Any] = []
            for item in stmt.items:
                if isinstance(item.expr, Star):
                    output.extend(self._expand_star(item.expr, env))
                else:
                    output.append(evaluate(item.expr, row_ctx))
            order_keys = tuple(evaluate(o.expr, row_ctx)
                               for o in stmt.order_by)
            final.append((order_keys, tuple(output)))
        return self._finalize(stmt, ctx, columns, final)

    def _project_item(self, item: SelectItem, row_ctx: EvalContext) -> Any:
        if isinstance(item.expr, Star):
            raise ExecutionError("'*' is not valid with GROUP BY")
        return evaluate(item.expr, row_ctx)

    def _expand_star(self, star: Star,
                     env: Dict[str, Dict[str, Any]]) -> List[Any]:
        out: List[Any] = []
        aliases = [star.table] if star.table else sorted(env)
        for alias in aliases:
            if alias not in env:
                raise ExecutionError(f"unknown alias {alias!r} for '*'")
            cols = self._alias_columns.get(alias)
            names = list(cols) if cols else sorted(env[alias])
            if self.tx.provenance:
                # Provenance pseudo-columns ride along, in the same fixed
                # order _output_columns advertises them.
                names.extend(c for c in PROVENANCE_COLUMNS
                             if c not in names)
            for name in names:
                out.append(env[alias].get(name))
        return out

    def _output_columns(self, stmt: Select) -> List[str]:
        columns: List[str] = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                aliases = ([item.expr.table] if item.expr.table
                           else sorted(self._alias_columns))
                for alias in aliases:
                    cols = self._alias_columns.get(alias, [])
                    columns.extend(cols)
                    if self.tx.provenance:
                        columns.extend(
                            c for c in PROVENANCE_COLUMNS if c not in cols)
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                columns.append(item.expr.name)
            elif isinstance(item.expr, FunctionCall):
                columns.append(item.expr.name)
            else:
                columns.append(f"column{len(columns) + 1}")
        return columns

    def _finalize(self, stmt: Select, ctx: EvalContext, columns: List[str],
                  rows: List[Tuple[Tuple, Tuple]]) -> Result:
        if stmt.order_by:
            def cmp_rows(a, b):
                for spec, av, bv in zip(stmt.order_by, a[0], b[0]):
                    if av is None and bv is None:
                        continue
                    if av is None:
                        return 1   # NULLS LAST
                    if bv is None:
                        return -1
                    c = compare_values(av, bv)
                    if c:
                        return c if spec.ascending else -c
                return 0
            rows = sorted(rows, key=functools.cmp_to_key(cmp_rows))
        output = [row for _, row in rows]
        if stmt.distinct:
            seen = set()
            unique: List[Tuple] = []
            for row in output:
                key = repr(row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            output = unique
        offset = 0
        if stmt.offset is not None:
            offset = int(evaluate(stmt.offset, ctx) or 0)
            output = output[offset:]
        if stmt.limit is not None:
            limit = evaluate(stmt.limit, ctx)
            if limit is not None:
                output = output[:int(limit)]
        return Result(columns=columns, rows=output, rowcount=len(output))

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------

    def _execute_insert(self, stmt: Insert, ctx: EvalContext) -> Result:
        self._check_write(stmt.table)
        schema = self.db.catalog.schema_of(stmt.table)
        heap = self.db.catalog.heap_of(stmt.table)
        self._alias_columns = {stmt.table: schema.column_names()}

        if stmt.select is not None:
            sub = self._execute_select(stmt.select, ctx)
            rows_values = [list(row) for row in sub.rows]
        else:
            rows_values = [[evaluate(expr, ctx) for expr in row]
                           for row in stmt.rows]

        columns = stmt.columns or schema.column_names()
        inserted = 0
        for raw in rows_values:
            if len(raw) != len(columns):
                raise ExecutionError(
                    f"INSERT has {len(raw)} values for {len(columns)} "
                    f"columns")
            values: Dict[str, Any] = dict(zip(columns, raw))
            self._apply_defaults_and_validate(schema, values, ctx)
            self._check_unique(schema, heap, values, exclude_row=None)
            version = heap.insert_version(values, self.tx.xid)
            self.tx.record_write(WriteSetEntry(
                table=stmt.table, kind="insert", new_version=version))
            inserted += 1
        return Result(rowcount=inserted)

    def _apply_defaults_and_validate(self, schema: TableSchema,
                                     values: Dict[str, Any],
                                     ctx: EvalContext) -> None:
        for col in schema.columns:
            if col.name not in values or values[col.name] is None:
                if col.default is not None and col.name not in values:
                    values[col.name] = evaluate(col.default, ctx)
                else:
                    values.setdefault(col.name, None)
            if values[col.name] is not None:
                values[col.name] = coerce_value(
                    values[col.name], col.type_name, col.name)
            elif col.not_null:
                raise ConstraintViolation(
                    f"column {col.name!r} of {schema.name!r} is NOT NULL",
                    constraint="not_null", table=schema.name)
        unknown = set(values) - set(schema.column_names())
        if unknown:
            raise ExecutionError(
                f"unknown column(s) {sorted(unknown)} for {schema.name!r}")
        self._check_checks(schema, values, ctx)

    def _check_checks(self, schema: TableSchema, values: Dict[str, Any],
                      ctx: EvalContext) -> None:
        row_ctx = ctx.child_for_row({schema.name: values})
        for col in schema.columns:
            if col.check is not None:
                if evaluate(col.check, row_ctx) is False:
                    raise ConstraintViolation(
                        f"check constraint on column {col.name!r} failed",
                        constraint="check", table=schema.name)
        for check in schema.checks:
            if evaluate(check, row_ctx) is False:
                raise ConstraintViolation(
                    f"table check constraint on {schema.name!r} failed",
                    constraint="check", table=schema.name)

    def _check_unique(self, schema: TableSchema, heap, values: Dict[str, Any],
                      exclude_row: Optional[int]) -> None:
        for index in heap.indexes.values():
            if not index.unique:
                continue
            key_values = [values.get(c) for c in index.columns]
            if any(v is None for v in key_values):
                continue
            candidate_ids = index.scan_eq(key_values)
            candidates = heap.resolve(candidate_ids)
            low = high = normalize_key(key_values)
            self.tx.record_predicate_read(PredicateRead(
                table=schema.name, columns=index.columns,
                low_key=low, high_key=high))
            self._window_checks(schema.name, candidates)
            for version in candidates:
                if exclude_row is not None and \
                        version.row_id == exclude_row:
                    continue
                if version_visible(version, self.tx.snapshot,
                                   self.db.statuses, self.tx.xid):
                    raise ConstraintViolation(
                        f"duplicate key value violates unique constraint "
                        f"{index.name!r}", constraint=index.name,
                        table=schema.name)

    # ------------------------------------------------------------------
    # UPDATE / DELETE
    # ------------------------------------------------------------------

    def _execute_update(self, stmt: Update, ctx: EvalContext) -> Result:
        self._check_write(stmt.table)
        if stmt.where is None and self.tx.forbid_blind_updates:
            raise BlindUpdateError(
                "blind updates are not supported in the "
                "execute-order-in-parallel flow (section 3.4.3)")
        schema = self.db.catalog.schema_of(stmt.table)
        heap = self.db.catalog.heap_of(stmt.table)
        self._alias_columns = {stmt.table: schema.column_names()}
        targets = self._scan(stmt.table, stmt.table, stmt.where, ctx)
        updated = 0
        for row in targets:
            row_ctx = ctx.child_for_row({stmt.table: row.values})
            if not evaluate_predicate(stmt.where, row_ctx):
                continue
            new_values = dict(row.values)
            for clause in stmt.sets:
                schema.column(clause.column)
                new_values[clause.column] = evaluate(clause.value, row_ctx)
            self._apply_defaults_and_validate(schema, new_values, ctx)
            self._check_unique(schema, heap, new_values,
                               exclude_row=row.version.row_id)
            new_version = heap.update_version(row.version, new_values,
                                              self.tx.xid)
            self.tx.record_write(WriteSetEntry(
                table=stmt.table, kind="update",
                old_version=row.version, new_version=new_version))
            updated += 1
        return Result(rowcount=updated)

    def _execute_delete(self, stmt: Delete, ctx: EvalContext) -> Result:
        self._check_write(stmt.table)
        if stmt.where is None and self.tx.forbid_blind_updates:
            raise BlindUpdateError(
                "blind deletes are not supported in the "
                "execute-order-in-parallel flow (section 3.4.3)")
        schema = self.db.catalog.schema_of(stmt.table)
        heap = self.db.catalog.heap_of(stmt.table)
        self._alias_columns = {stmt.table: schema.column_names()}
        targets = self._scan(stmt.table, stmt.table, stmt.where, ctx)
        deleted = 0
        for row in targets:
            row_ctx = ctx.child_for_row({stmt.table: row.values})
            if not evaluate_predicate(stmt.where, row_ctx):
                continue
            heap.delete_version(row.version, self.tx.xid)
            self.tx.record_write(WriteSetEntry(
                table=stmt.table, kind="delete", old_version=row.version))
            deleted += 1
        return Result(rowcount=deleted)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def _execute_create_table(self, stmt: CreateTable,
                              ctx: EvalContext) -> Result:
        self._check_write(stmt.name, ddl=True)
        columns = [ColumnDef(name=c.name, type_name=c.type_name,
                             not_null=c.not_null or c.primary_key,
                             default=c.default, check=c.check)
                   for c in stmt.columns]
        unique = [[c.name] for c in stmt.columns if c.unique]
        schema = TableSchema(name=stmt.name, columns=columns,
                             primary_key=list(stmt.primary_key),
                             unique_constraints=unique,
                             checks=list(stmt.checks))
        self.db.catalog.create_table(schema,
                                     if_not_exists=stmt.if_not_exists)
        return Result()

    def _execute_create_index(self, stmt: CreateIndex) -> Result:
        self._check_write(stmt.table, ddl=True)
        self.db.catalog.create_index(stmt.name, stmt.table, stmt.columns,
                                     unique=stmt.unique,
                                     if_not_exists=stmt.if_not_exists)
        return Result()


def run_sql(database: "Database", tx: TransactionContext, sql: str,
            params: Sequence[Any] = (),
            variables: Optional[Dict[str, Any]] = None,
            acl: Optional[AccessChecker] = None) -> Result:
    """Parse and execute a ;-separated SQL script; returns the last
    statement's result."""
    from repro.sql.parser import parse_sql

    executor = Executor(database, tx, acl=acl)
    result = Result()
    for stmt in parse_sql(sql):
        result = executor.execute(stmt, params=params, variables=variables)
    return result
