"""Scalar SQL functions and the determinism classification.

Section 4.3: "To make the PL/SQL procedure deterministic, we have
restricted the usage of date/time library, random functions from the
mathematics library, sequence manipulation functions, and system
information functions."  Each builtin carries a ``deterministic`` flag; the
contracts layer rejects procedures referencing non-deterministic ones, and
the executor refuses to evaluate them inside a blockchain transaction.
Read-only client queries (e.g. the Table 3 provenance audits, which use
``now() - interval '24 hours'``) may still use them.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from decimal import Decimal
from typing import Any, Callable, Dict, Optional, Sequence

from repro.errors import ExecutionError


@dataclass(frozen=True)
class SQLFunction:
    """A scalar builtin."""

    name: str
    fn: Callable[..., Any]
    min_args: int
    max_args: Optional[int]
    deterministic: bool = True


def _null_guard(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Standard SQL semantics: any NULL argument yields NULL."""
    def wrapper(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)
    return wrapper


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a: Any, b: Any) -> Any:
    return None if a == b else a


def _greatest(*args: Any) -> Any:
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _least(*args: Any) -> Any:
    present = [a for a in args if a is not None]
    return min(present) if present else None


def _substr(s: str, start: int, length: Optional[int] = None) -> str:
    # SQL substr is 1-based.
    begin = max(int(start) - 1, 0)
    if length is None:
        return s[begin:]
    return s[begin:begin + max(int(length), 0)]


def _round(value: Any, digits: int = 0) -> Any:
    if isinstance(value, Decimal):
        return value.quantize(Decimal(10) ** -int(digits))
    return round(float(value), int(digits))


def _to_number(value: Any) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ExecutionError(f"cannot convert {value!r} to number") from None


_REGISTRY: Dict[str, SQLFunction] = {}


def _register(name: str, fn: Callable[..., Any], min_args: int,
              max_args: Optional[int], deterministic: bool = True,
              null_guard: bool = True) -> None:
    wrapped = _null_guard(fn) if null_guard else fn
    _REGISTRY[name] = SQLFunction(name=name, fn=wrapped, min_args=min_args,
                                  max_args=max_args,
                                  deterministic=deterministic)


# -- math -------------------------------------------------------------------
_register("abs", abs, 1, 1)
_register("ceil", lambda x: math.ceil(_to_number(x)), 1, 1)
_register("ceiling", lambda x: math.ceil(_to_number(x)), 1, 1)
_register("floor", lambda x: math.floor(_to_number(x)), 1, 1)
_register("round", _round, 1, 2)
_register("trunc", lambda x: math.trunc(_to_number(x)), 1, 1)
_register("mod", lambda a, b: a % b, 2, 2)
_register("power", lambda a, b: _to_number(a) ** _to_number(b), 2, 2)
_register("sqrt", lambda x: math.sqrt(_to_number(x)), 1, 1)
_register("exp", lambda x: math.exp(_to_number(x)), 1, 1)
_register("ln", lambda x: math.log(_to_number(x)), 1, 1)
_register("sign", lambda x: (x > 0) - (x < 0), 1, 1)

# -- strings ------------------------------------------------------------------
_register("length", lambda s: len(str(s)), 1, 1)
_register("char_length", lambda s: len(str(s)), 1, 1)
_register("lower", lambda s: str(s).lower(), 1, 1)
_register("upper", lambda s: str(s).upper(), 1, 1)
_register("trim", lambda s: str(s).strip(), 1, 1)
_register("ltrim", lambda s: str(s).lstrip(), 1, 1)
_register("rtrim", lambda s: str(s).rstrip(), 1, 1)
_register("substr", _substr, 2, 3)
_register("substring", _substr, 2, 3)
_register("replace", lambda s, a, b: str(s).replace(str(a), str(b)), 3, 3)
_register("concat", lambda *a: "".join(str(x) for x in a if x is not None),
          1, None, null_guard=False)
_register("strpos", lambda s, sub: str(s).find(str(sub)) + 1, 2, 2)
_register("left", lambda s, n: str(s)[:int(n)], 2, 2)
_register("right", lambda s, n: str(s)[-int(n):] if int(n) else "", 2, 2)

# -- null handling / conditionals --------------------------------------------
_register("coalesce", _coalesce, 1, None, null_guard=False)
_register("nullif", _nullif, 2, 2, null_guard=False)
_register("greatest", _greatest, 1, None, null_guard=False)
_register("least", _least, 1, None, null_guard=False)

# -- non-deterministic (banned in contracts, section 4.3) ---------------------
_register("now", lambda: time.time(), 0, 0, deterministic=False,
          null_guard=False)
_register("current_timestamp", lambda: time.time(), 0, 0,
          deterministic=False, null_guard=False)
_register("clock_timestamp", lambda: time.time(), 0, 0,
          deterministic=False, null_guard=False)
_register("timeofday", lambda: time.time(), 0, 0, deterministic=False,
          null_guard=False)
_register("random", lambda: __import__("random").random(), 0, 0,
          deterministic=False, null_guard=False)

def _banned_sequence(*_args: Any) -> Any:
    raise ExecutionError("sequence functions are not supported")

_register("nextval", _banned_sequence, 1, 1, deterministic=False)
_register("currval", _banned_sequence, 1, 1, deterministic=False)
_register("setval", _banned_sequence, 2, 2, deterministic=False)

# -- system information (banned in contracts) ---------------------------------
_register("version", lambda: "repro-blockchaindb 1.0", 0, 0,
          deterministic=False, null_guard=False)
_register("pg_backend_pid", lambda: 0, 0, 0, deterministic=False,
          null_guard=False)

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})

NON_DETERMINISTIC_NAMES = frozenset(
    name for name, spec in _REGISTRY.items() if not spec.deterministic)


def lookup(name: str) -> SQLFunction:
    """Find a scalar builtin; raises :class:`ExecutionError` if unknown."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ExecutionError(f"unknown function {name!r}")
    return spec


def is_known(name: str) -> bool:
    return name in _REGISTRY


def call(name: str, args: Sequence[Any],
         allow_nondeterministic: bool = True) -> Any:
    """Invoke builtin ``name`` with ``args``."""
    spec = lookup(name)
    if not spec.deterministic and not allow_nondeterministic:
        raise ExecutionError(
            f"function {name}() is non-deterministic and not allowed in "
            f"blockchain transactions")
    if len(args) < spec.min_args or (spec.max_args is not None
                                     and len(args) > spec.max_args):
        raise ExecutionError(f"{name}() called with {len(args)} arguments")
    return spec.fn(*args)
