"""Binder + logical→physical planner.

Stage 1 (**bind**): resolve every table reference against the catalog and
build the alias→columns map the rest of planning (and ``*`` expansion)
uses.  ORDER BY references to select-list aliases are resolved here into a
side list of effective order items — the parsed AST is never mutated, so a
cached statement (stored procedures re-execute the same tree) can't see a
corrupted ORDER BY.

Stage 2 (**physical planning**): pick access paths and join strategies
from the *snapshot-anchored* statistics in :mod:`repro.sql.stats`
(committed row counts and distinct-key counts pinned to the committed
block height — identical on every node at the same height, so cost-based
choices cannot diverge SIREAD sets across replicas):

* scans: sargable bounds (evaluated against the statement's parameters /
  PL variables / outer row context) feed the same leading-column index
  scoring the old executor used, so index choice — and therefore the
  candidate set the phantom/stale window checks inspect — is unchanged;
* joins: the planner costs a :class:`HashJoin` (build the inner side
  once, probe per outer row), an index-:class:`NestedLoopJoin` (dynamic
  per-row probes), and — when both join columns have ordering indexes —
  a :class:`SortMergeJoin` over :class:`IndexOrderScan` inputs, crediting
  the merge join with the downstream Sort it makes unnecessary when an
  ``ORDER BY <join key>`` follows.  The decision is a pure function of
  (statement fingerprint, anchored statistics), and the plan cache keys
  on the stats anchor, so every node planning at one committed height
  picks the same plan.  Under ``tx.require_index`` (the
  execute-order-in-parallel flow) the pre-costing structural rules apply
  unchanged: a hash build whose scan no index can serve is never chosen —
  the nested-loop probes keep every predicate read index-backed,
  preserving the paper's section 4.3 rule — and the full-index walks of
  the merge/streaming operators are never planned;
* Limit-only pipelines (single table, ``ORDER BY <indexed column>
  LIMIT n``) stream through an :class:`IndexOrderScan` +
  :class:`StreamingLimit` instead of materialize-and-sort.

``EXPLAIN <stmt>`` renders the physical tree (:func:`render_plan`) with
per-operator ``cost~``/``rows~`` annotations.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analytics.operators import (
    AggSpec,
    ColumnarAggregate,
    ColumnarScan,
    VectorPredicate,
)
from repro.sql import functions
from repro.sql.ast_nodes import (
    Between, BinaryOp, ColumnRef, Expr, FunctionCall, Join,
    OrderItem, Select, SelectItem, Star, SubqueryExpr,
)
from repro.sql.expressions import (
    COMPILE_STATS,
    EvalContext,
    compile_expr,
    expr_fingerprint,
)
from repro.sql.plan import (
    PROVENANCE_COLUMNS,
    DynamicProbe,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    IndexOrderScan,
    IndexScan,
    Limit,
    NestedLoopJoin,
    OneRow,
    PlanEstimate,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    SortMergeJoin,
    StreamingLimit,
    _l2,
    column_of_alias,
    conjuncts,
    extract_bounds,
    join_estimates,
    ordered_scan_estimates,
    ordered_scan_sig,
    rank_indexes,
    recost_plan,
    render_plan,
)
from repro.sql.plancache import ScanGuard

# ---------------------------------------------------------------------------
# Per-query planning/execution timing (bench harness reads this)
# ---------------------------------------------------------------------------

class QueryTimings:
    """Process-wide accumulator of per-statement plan/execute times,
    plan-cache hit/miss counts, and expression-compilation cost."""

    def __init__(self):
        self._lock = threading.Lock()
        self.statements = 0
        self.plan_seconds = 0.0
        self.exec_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    def record(self, plan_seconds: float, exec_seconds: float,
               cache_hit: Optional[bool] = None) -> None:
        with self._lock:
            self.statements += 1
            self.plan_seconds += plan_seconds
            self.exec_seconds += exec_seconds
            if cache_hit is True:
                self.cache_hits += 1
            elif cache_hit is False:
                self.cache_misses += 1

    def reset(self) -> None:
        with self._lock:
            self.statements = 0
            self.plan_seconds = 0.0
            self.exec_seconds = 0.0
            self.cache_hits = 0
            self.cache_misses = 0
        COMPILE_STATS.reset()

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            n = self.statements or 1
            out = {
                "statements": self.statements,
                "plan_ms_total": round(self.plan_seconds * 1e3, 3),
                "exec_ms_total": round(self.exec_seconds * 1e3, 3),
                "plan_ms_avg": round(self.plan_seconds / n * 1e3, 4),
                "exec_ms_avg": round(self.exec_seconds / n * 1e3, 4),
                "plan_cache_hits": self.cache_hits,
                "plan_cache_misses": self.cache_misses,
            }
        out.update(COMPILE_STATS.snapshot())
        return out


QUERY_TIMINGS = QueryTimings()


class timed:
    """Context manager capturing a perf_counter interval."""

    def __enter__(self):
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self.started
        return False


# ---------------------------------------------------------------------------
# Plan containers
# ---------------------------------------------------------------------------

@dataclass
class SelectPlan:
    """A planned SELECT: operator tree + binder output.

    The tree is a reusable *template*: operators hold compiled
    expressions and structural choices but no per-execution values
    (scan bounds re-derive from the live context), so the plan cache can
    hand the same instance to any number of executions.  ``guards``
    capture the structural access-path choices; the cache re-validates
    them before every reuse.
    """

    root: PlanNode
    columns: List[str]
    alias_columns: Dict[str, Sequence[str]] = field(default_factory=dict)
    guards: List[ScanGuard] = field(default_factory=list)

    def explain(self) -> List[str]:
        return render_plan(self.root)


class Planner:
    """Plans statements for one database + one transaction."""

    def __init__(self, db, tx):
        self.db = db
        self.tx = tx
        # One ScanGuard per statically planned scan (in planning order);
        # the plan cache replays these against each execution context.
        self.guards: List[ScanGuard] = []
        # Bounds extracted while planning, by scan-node id — handed to
        # the first execution so scans don't re-extract them (cache hits
        # get the equivalent map from guard validation).
        self.scan_bounds: Dict[int, Dict[str, Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def bind_select(self, stmt: Select) -> Dict[str, Sequence[str]]:
        """alias -> column names for every table the query references."""
        alias_columns: Dict[str, Sequence[str]] = {}
        if stmt.from_table is not None:
            refs = [stmt.from_table] + [j.table for j in stmt.joins]
            for ref in refs:
                schema = self.db.catalog.schema_of(ref.name)
                alias_columns[ref.alias] = schema.column_names()
        return alias_columns

    def effective_order_items(
            self, stmt: Select,
            alias_columns: Dict[str, Sequence[str]]) -> List[OrderItem]:
        """ORDER BY may reference select-list aliases (``SELECT sum(v) AS
        total ... ORDER BY total``); resolve those refs to the aliased
        expression *without mutating the parsed tree*.  Real columns
        shadow aliases."""
        aliases = {item.alias: item.expr for item in stmt.items
                   if item.alias is not None}
        known_columns = {col for cols in alias_columns.values()
                         for col in cols}
        out: List[OrderItem] = []
        for order in stmt.order_by:
            expr = order.expr
            if isinstance(expr, ColumnRef) and expr.table is None \
                    and expr.name in aliases \
                    and expr.name not in known_columns:
                out.append(OrderItem(expr=aliases[expr.name],
                                     ascending=order.ascending))
            else:
                out.append(order)
        return out

    def collect_aggregates(self, stmt: Select,
                           order_items: Sequence[OrderItem]
                           ) -> List[FunctionCall]:
        found: List[FunctionCall] = []
        seen: Set[str] = set()

        def visit(expr: Optional[Expr]):
            if expr is None:
                return
            for node in expr.walk():
                if isinstance(node, FunctionCall) and \
                        node.name in functions.AGGREGATE_NAMES:
                    key = expr_fingerprint(node)
                    if key not in seen:
                        seen.add(key)
                        found.append(node)

        for item in stmt.items:
            visit(item.expr)
        visit(stmt.having)
        for order in order_items:
            visit(order.expr)
        return found

    def output_columns(self, stmt: Select,
                       alias_columns: Dict[str, Sequence[str]]) -> List[str]:
        columns: List[str] = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                aliases = ([item.expr.table] if item.expr.table
                           else sorted(alias_columns))
                for alias in aliases:
                    cols = alias_columns.get(alias, [])
                    columns.extend(cols)
                    if self.tx.provenance:
                        columns.extend(
                            c for c in PROVENANCE_COLUMNS if c not in cols)
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                columns.append(item.expr.name)
            elif isinstance(item.expr, FunctionCall):
                columns.append(item.expr.name)
            else:
                columns.append(f"column{len(columns) + 1}")
        return columns

    # ------------------------------------------------------------------
    # Scan planning
    # ------------------------------------------------------------------

    def _columnar_routing(self, ctx: EvalContext) -> bool:
        """True when this statement executes at a pinned AS OF height and
        the node's columnar replica may serve its scans."""
        return (ctx.as_of_height is not None
                and not self.tx.provenance
                and getattr(self.db, "columnstore", None) is not None
                and self.db.columnstore.enabled)

    def _plan_columnar_scan(self, table: str, alias: str,
                            where: Optional[Expr], ctx: EvalContext,
                            alias_columns: Dict[str, Sequence[str]]
                            ) -> ColumnarScan:
        """Columnar access path for an AS OF scan.  The guard records no
        index signature (the store has none to validate) but still
        threads the extracted bounds to execution for zone-map pruning."""
        scan = ColumnarScan(table, alias, where)
        guard = ScanGuard(table=table, alias=alias, where=where,
                          alias_columns=alias_columns, signature=None,
                          columnar=True)
        guard.node = scan
        self.guards.append(guard)
        bounds = extract_bounds(where, alias, ctx, alias_columns)
        self.scan_bounds[id(scan)] = bounds
        scan.live_bounds = bounds
        scan.recost(self.db)
        return scan

    def plan_scan(self, table: str, alias: str, where: Optional[Expr],
                  ctx: EvalContext,
                  alias_columns: Optional[Dict[str, Sequence[str]]] = None
                  ) -> SeqScan:
        """Access path for one table: IndexScan when the sargable bounds
        (resolved against ``ctx``) are served by an index, SeqScan
        otherwise.  The node stores the WHERE *expression* (templates
        carry no per-execution values); execution re-derives the bounds
        from the live context and re-runs the same deterministic index
        scoring over them.  A :class:`ScanGuard` capturing the structural
        choice is recorded for plan-cache validation.

        Statements pinned to an AS OF height route to the columnar
        replica instead (:class:`ColumnarScan`) whenever it is enabled —
        reads below the committed height have no SSI obligations, so the
        index-backed-predicate rules don't apply there."""
        if alias_columns is None:
            schema = self.db.catalog.schema_of(table)
            alias_columns = {alias: schema.column_names()}
        if self._columnar_routing(ctx):
            return self._plan_columnar_scan(table, alias, where, ctx,
                                            alias_columns)
        heap = self.db.catalog.heap_of(table)
        sources: Dict[str, List[Expr]] = {}
        bounds = extract_bounds(where, alias, ctx, alias_columns, sources)
        best = rank_indexes(heap, bounds)
        guard = ScanGuard(
            table=table, alias=alias, where=where,
            alias_columns=alias_columns,
            signature=None if best is None
            else (best[0].name, best[1], best[2]))
        self.guards.append(guard)
        if best is None:
            scan: SeqScan = SeqScan(table, alias, where)
        else:
            index, n_eq, has_range = best
            depth = n_eq + (1 if has_range else 0) or 1
            used_cols = index.columns[:depth]
            conditions: List[Expr] = []
            for col in used_cols:
                for conj in sources.get(col, []):
                    if conj not in conditions:
                        conditions.append(conj)
            unique_covered = index.unique and n_eq == len(index.columns)
            scan = IndexScan(
                table, alias, where, index.name, conditions,
                unique_covered=unique_covered,
                cost_sig=(n_eq, has_range, unique_covered,
                          tuple(index.columns[:n_eq])))
        guard.node = scan
        self.scan_bounds[id(scan)] = bounds
        scan.live_bounds = bounds
        scan.recost(self.db)
        return scan

    def _plan_index_order_scan(self, table: str, alias: str,
                               where: Optional[Expr], ctx: EvalContext,
                               alias_columns: Dict[str, Sequence[str]],
                               index_name: str, order_column: str,
                               descending: bool = False) -> IndexOrderScan:
        """An :class:`IndexOrderScan` over ``index_name`` (whose leading
        column is ``order_column``), with the standard ScanGuard so the
        plan cache revalidates structure and threads bounds.  Bounds on
        the order column narrow the index walk; everything else is left
        to the Filter above."""
        sources: Dict[str, List[Expr]] = {}
        bounds = extract_bounds(where, alias, ctx, alias_columns, sources)
        best = rank_indexes(self.db.catalog.heap_of(table), bounds)
        guard = ScanGuard(
            table=table, alias=alias, where=where,
            alias_columns=alias_columns,
            signature=None if best is None
            else (best[0].name, best[1], best[2]))
        scan = IndexOrderScan(
            table, alias, where, index_name, order_column,
            descending=descending,
            conditions=sources.get(order_column, []),
            cost_sig=ordered_scan_sig(bounds, order_column))
        guard.node = scan
        self.guards.append(guard)
        self.scan_bounds[id(scan)] = bounds
        scan.live_bounds = bounds
        scan.recost(self.db)
        return scan

    def _order_index_for(self, table: str,
                         column: str) -> Optional[str]:
        """The index that orders ``table`` by ``column``: smallest name
        among indexes whose leading column is ``column`` (name order is
        catalog-deterministic — replicas run the same DDL)."""
        heap = self.db.catalog.heap_of(table)
        names = sorted(name for name, index in heap.indexes.items()
                       if index.columns and index.columns[0] == column)
        return names[0] if names else None


    # ------------------------------------------------------------------
    # Join planning
    # ------------------------------------------------------------------

    def _find_equi_keys(self, combined: Optional[Expr], join: Join,
                        planned_aliases: Set[str],
                        alias_columns: Dict[str, Sequence[str]]
                        ) -> List[Tuple[str, Expr]]:
        """(inner column, probe expression) pairs from ``=`` conjuncts of
        ON/WHERE linking the joined table to already-planned aliases."""
        if combined is None:
            return []
        alias = join.table.alias
        inner_cols = alias_columns.get(alias, ())
        keys: List[Tuple[str, Expr]] = []
        for conj in conjuncts(combined):
            if not (isinstance(conj, BinaryOp) and conj.op == "="):
                continue
            col = column_of_alias(conj.left, alias, inner_cols)
            other = conj.right
            if col is None:
                col = column_of_alias(conj.right, alias, inner_cols)
                other = conj.left
            if col is None:
                continue
            if self._probe_expr_ok(other, alias, inner_cols,
                                   planned_aliases, alias_columns):
                keys.append((col, other))
        return keys

    def _probe_expr_ok(self, expr: Expr, inner_alias: str,
                       inner_cols: Sequence[str],
                       planned_aliases: Set[str],
                       alias_columns: Dict[str, Sequence[str]]) -> bool:
        """True when ``expr`` can be evaluated per probe row: no stars,
        aggregates or subqueries, no references to the inner table, and at
        least one reference to an already-planned alias (a pure constant
        is a build-side bound, not a join key)."""
        references_planned = False
        for node in expr.walk():
            if isinstance(node, Star):
                return False
            if isinstance(node, FunctionCall) and \
                    node.name in functions.AGGREGATE_NAMES:
                return False
            if isinstance(node, SubqueryExpr):
                return False
            if isinstance(node, ColumnRef):
                if node.table == inner_alias:
                    return False
                if node.table is None and node.name in inner_cols:
                    return False
                if node.table in planned_aliases:
                    references_planned = True
                elif node.table is None and any(
                        node.name in alias_columns.get(a, ())
                        for a in planned_aliases):
                    references_planned = True
        return references_planned

    def _predict_probe(self, combined: Optional[Expr], join: Join,
                       planned_aliases: Set[str],
                       alias_columns: Dict[str, Sequence[str]]
                       ) -> Tuple[Optional[str], List[Expr], int, bool,
                                  bool, Tuple[str, ...]]:
        """Structural dry-run of the per-row bound extraction: which index
        would a nested-loop probe use, given that outer-row columns become
        constants at probe time?  Returns (index_name, condition exprs,
        n_eq, has_range, unique_covered, eq column names)."""
        alias = join.table.alias
        inner_cols = alias_columns.get(alias, ())
        heap = self.db.catalog.heap_of(join.table.name)
        shapes: Dict[str, Dict[str, Any]] = {}
        sources: Dict[str, List[Expr]] = {}
        if combined is not None:
            for conj in conjuncts(combined):
                self._predict_shape(conj, alias, inner_cols, shapes,
                                    sources)
        best = rank_indexes(heap, shapes)
        if best is None:
            return None, [], 0, False, False, ()
        index, n_eq, has_range = best
        depth = n_eq + (1 if has_range else 0)
        conditions: List[Expr] = []
        for col in index.columns[:depth]:
            for conj in sources.get(col, []):
                if conj not in conditions:
                    conditions.append(conj)
        unique_covered = index.unique and n_eq == len(index.columns)
        return (index.name, conditions, n_eq, has_range, unique_covered,
                tuple(index.columns[:n_eq]))

    def _predict_shape(self, conj: Expr, alias: str,
                       inner_cols: Sequence[str],
                       shapes: Dict[str, Dict[str, Any]],
                       sources: Dict[str, List[Expr]]) -> None:
        """One conjunct's contribution to the predicted probe-time bound
        shapes — mirrors extract_bounds structurally (comparisons,
        BETWEEN, IN) with outer-row columns standing in as constants."""
        from repro.sql.ast_nodes import Between, InList

        if isinstance(conj, BinaryOp) and conj.op in {
                "=", "<", "<=", ">", ">="}:
            col = column_of_alias(conj.left, alias, inner_cols)
            other = conj.right
            op = conj.op
            if col is None:
                col = column_of_alias(conj.right, alias, inner_cols)
                other = conj.left
                op = {"<": ">", "<=": ">=", ">": "<",
                      ">=": "<="}.get(op, op)
            if col is None or not self._row_free(other, alias, inner_cols):
                return
            slot = shapes.setdefault(col, {})
            if op == "=":
                slot["eq"] = True
            elif op in {"<", "<="}:
                slot["high"] = (True, True)
            else:
                slot["low"] = (True, True)
            sources.setdefault(col, []).append(conj)
            return
        if isinstance(conj, Between) and not conj.negated:
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None:
                return
            if self._row_free(conj.low, alias, inner_cols):
                shapes.setdefault(col, {})["low"] = (True, True)
                sources.setdefault(col, []).append(conj)
            if self._row_free(conj.high, alias, inner_cols):
                shapes.setdefault(col, {})["high"] = (True, True)
                sources.setdefault(col, []).append(conj)
            return
        if isinstance(conj, InList) and not conj.negated:
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None:
                return
            if all(self._row_free(item, alias, inner_cols)
                   for item in conj.items) and conj.items:
                slot = shapes.setdefault(col, {})
                slot["low"] = (True, True)
                slot["high"] = (True, True)
                sources.setdefault(col, []).append(conj)

    def _row_free(self, expr: Expr, inner_alias: str,
                  inner_cols: Sequence[str]) -> bool:
        """Structurally independent of the scanned (inner) row."""
        for node in expr.walk():
            if isinstance(node, Star):
                return False
            if isinstance(node, FunctionCall) and \
                    node.name in functions.AGGREGATE_NAMES:
                return False
            if isinstance(node, SubqueryExpr):
                return False
            if isinstance(node, ColumnRef):
                if node.table == inner_alias:
                    return False
                if node.table is None and node.name in inner_cols:
                    return False
        return True

    def _binder(self, alias_columns: Dict[str, Sequence[str]]):
        """Compile-time column pre-resolution input: disabled under
        provenance sessions, whose pseudo-columns extend row environments
        beyond the schema the binder knows about."""
        return None if self.tx.provenance else alias_columns

    def _cost_based(self) -> bool:
        """Cost-based strategy choice applies outside the EO flow (where
        the section 4.3 structural rules stay authoritative) whenever the
        database has it enabled.  Both inputs are part of the plan-cache
        key, so the mode can never flip between a miss and a hit."""
        return (getattr(self.db, "cost_based_planning", True)
                and not self.tx.require_index)

    def _smj_candidate(self, outer: PlanNode, join: Join,
                       keys: List[Tuple[str, Expr]],
                       ctx: EvalContext,
                       alias_columns: Dict[str, Sequence[str]]
                       ) -> Optional[Tuple[str, str, str, str]]:
        """Structural sort-merge eligibility: a single equi-key pair of
        plain columns, the outer side still a base heap scan, and an
        ordering index (leading column = join column) on each side.
        Returns (outer column, outer index, inner column, inner index)
        or None."""
        if len(keys) != 1 or join.kind not in ("INNER", "LEFT"):
            return None
        if self.tx.provenance or ctx.as_of_height is not None:
            return None
        if not isinstance(outer, (SeqScan, IndexScan)) or \
                isinstance(outer, ColumnarScan):
            return None
        inner_col, probe_expr = keys[0]
        if not isinstance(probe_expr, ColumnRef):
            return None
        outer_cols = alias_columns.get(outer.alias, ())
        if probe_expr.table is not None and probe_expr.table != outer.alias:
            return None
        if probe_expr.table is None and probe_expr.name not in outer_cols:
            return None
        outer_col = probe_expr.name
        outer_index = self._order_index_for(outer.table, outer_col)
        inner_index = self._order_index_for(join.table.name, inner_col)
        if outer_index is None or inner_index is None:
            return None
        return outer_col, outer_index, inner_col, inner_index

    def plan_join(self, outer: PlanNode, join: Join, where: Optional[Expr],
                  ctx: EvalContext, planned_aliases: Set[str],
                  alias_columns: Dict[str, Sequence[str]],
                  sort_elision_order: Optional[Sequence[OrderItem]] = None
                  ) -> PlanNode:
        """Join strategy for one joined table.

        ``sort_elision_order`` is the statement's effective ORDER BY when
        this is the last join and no aggregation/grouping reorders rows
        above it — a SortMergeJoin that satisfies that order makes the
        downstream Sort unnecessary, and the costing credits it.

        Determinism: every cost input is snapshot-anchored (sql/stats.py)
        and every structural input is part of the plan-cache key, so the
        chosen strategy is a pure function of (statement fingerprint,
        anchored statistics) — nodes at the same committed height always
        agree, and a cache hit can never produce a different plan than a
        fresh planning pass.
        """
        # Conditions usable for the inner access path may come from the
        # ON clause and from the WHERE clause.
        combined = join.on
        if where is not None:
            combined = (where if combined is None
                        else BinaryOp("AND", combined, where))
        alias = join.table.alias
        schema = self.db.catalog.schema_of(join.table.name)

        keys = self._find_equi_keys(combined, join, planned_aliases,
                                    alias_columns)
        (probe_index, probe_conds, n_eq, has_range, unique_covered,
         probe_eq_cols) = self._predict_probe(combined, join,
                                              planned_aliases,
                                              alias_columns)

        binder = self._binder(alias_columns)
        probe = DynamicProbe(join.table.name, alias, probe_index,
                             probe_conds,
                             cost_sig=(n_eq, has_range, unique_covered,
                                       probe_eq_cols))
        probe.recost(self.db)
        outer_est = max(outer.est_rows, 1.0)
        nlj_cost = outer.est_cost + outer_est * max(probe.est_cost, 1.0)

        build: Optional[SeqScan] = None
        if keys:
            # The build side is scanned once, so only conjuncts constant
            # at plan time (no outer-row references) can bound it.
            build = self.plan_scan(join.table.name, alias, combined, ctx,
                                   alias_columns)

        if not self._cost_based():
            # Pre-costing structural rules (also the EO section 4.3
            # flow): hash when an equi-key exists, except index-less
            # builds under require_index and point-lookup shapes.
            hash_allowed = build is not None
            if hash_allowed:
                if self.tx.require_index and not schema.system \
                        and not self.tx.provenance \
                        and not isinstance(build, IndexScan):
                    hash_allowed = False
                elif unique_covered or (isinstance(outer, IndexScan)
                                        and outer.unique_covered):
                    hash_allowed = False
            if hash_allowed:
                node: PlanNode = HashJoin(outer, join, build, keys,
                                          binder=binder)
            else:
                node = NestedLoopJoin(outer, join, combined, probe,
                                      binder=binder)
            node.recost(self.db)
            return node

        # ---- cost-based choice -----------------------------------------
        candidates: List[Tuple[float, int, str]] = [(nlj_cost, 2, "nlj")]
        if build is not None:
            _, hash_cost = join_estimates(self.db, outer, build, join,
                                          tuple(c for c, _ in keys))
            candidates.append((hash_cost, 0, "hash"))

        smj = self._smj_candidate(outer, join, keys, ctx, alias_columns)
        smj_cost = None
        if smj is not None:
            outer_col, outer_index, inner_col, inner_index = smj
            outer_bounds = extract_bounds(outer.where, outer.alias, ctx,
                                          alias_columns)
            inner_bounds = extract_bounds(combined, alias, ctx,
                                          alias_columns)
            # Same formulas the constructed nodes' recost would use —
            # computed via estimate carriers so candidate costing never
            # leaks guards for plans that are not chosen.
            smj_outer = PlanEstimate(*ordered_scan_estimates(
                self.db, outer.table,
                ordered_scan_sig(outer_bounds, outer_col),
                range_column=outer_col, bounds=outer_bounds))
            smj_inner = PlanEstimate(*ordered_scan_estimates(
                self.db, join.table.name,
                ordered_scan_sig(inner_bounds, inner_col),
                range_column=inner_col, bounds=inner_bounds))
            smj_rows, smj_cost = join_estimates(
                self.db, smj_outer, smj_inner, join, (inner_col,))
            if sort_elision_order and self._order_satisfied(
                    [(outer.alias, outer_col)] +
                    ([(alias, inner_col)] if join.kind != "LEFT" else []),
                    {outer.alias: outer.table, alias: join.table.name},
                    sort_elision_order, alias_columns,
                    emitted_nulls_first=(join.kind == "LEFT")):
                # Every other strategy pays the Sort this join elides.
                sort_cost = smj_rows * _l2(smj_rows)
                candidates = [(cost + sort_cost, rank, kind)
                              for cost, rank, kind in candidates]
            candidates.append((smj_cost, 1, "smj"))

        _, _, choice = min(candidates)
        if choice == "hash":
            node = HashJoin(outer, join, build, keys, binder=binder)
        elif choice == "smj":
            outer_col, outer_index, inner_col, inner_index = smj
            outer_scan = self._plan_index_order_scan(
                outer.table, outer.alias, outer.where, ctx,
                alias_columns, outer_index, outer_col)
            # Thread the replaced outer scan's guard to the new node so
            # guard-validated bounds reach the scan that actually runs.
            for guard in self.guards:
                if guard.node is outer:
                    guard.node = None
            self.scan_bounds.pop(id(outer), None)
            inner_scan = self._plan_index_order_scan(
                join.table.name, alias, combined, ctx, alias_columns,
                inner_index, inner_col)
            node = SortMergeJoin(outer_scan, join, inner_scan,
                                 outer_col, inner_col, binder=binder)
        else:
            node = NestedLoopJoin(outer, join, combined, probe,
                                  binder=binder)
        node.recost(self.db)
        return node

    # ------------------------------------------------------------------
    # Order-satisfaction (Sort elision)
    # ------------------------------------------------------------------

    #: Declared types whose index-key order provably matches the Sort
    #: comparator.  NUMERIC/DECIMAL is excluded: index keys normalize
    #: Decimals through float, which can collapse values the comparator
    #: distinguishes.
    _ORDER_SAFE_TYPES = frozenset({
        "INT", "INTEGER", "BIGINT", "SERIAL", "INT4", "INT8",
        "FLOAT", "DOUBLE", "REAL", "TIMESTAMP", "BOOLEAN",
        "TEXT", "VARCHAR", "CHAR",
    })

    def _order_satisfied(self, sorted_cols: List[Tuple[str, str]],
                         tables_by_alias: Dict[str, str],
                         order_items: Sequence[OrderItem],
                         alias_columns: Dict[str, Sequence[str]],
                         emitted_nulls_first: bool = True) -> bool:
        """True when a single ascending ORDER BY item names one of the
        ``sorted_cols`` an index-order operator already emits, with
        type/NULL rules that make index order provably equal to the Sort
        comparator's order (NULLS LAST): the column's declared type must
        be order-safe, and — since index order puts NULLs first — the
        column must be NOT NULL unless the operator can never emit a
        NULL key (INNER-join keys)."""
        if len(order_items) != 1:
            return False
        item = order_items[0]
        if not item.ascending or not isinstance(item.expr, ColumnRef):
            return False
        for alias, col in sorted_cols:
            if column_of_alias(item.expr, alias,
                               alias_columns.get(alias, ())) != col:
                continue
            table = tables_by_alias[alias]
            column = self.db.catalog.schema_of(table).column(col)
            if column.type_name.upper() not in self._ORDER_SAFE_TYPES:
                return False
            if emitted_nulls_first and not column.not_null:
                return False
            return True
        return False

    # ------------------------------------------------------------------
    # SELECT planning
    # ------------------------------------------------------------------

    def plan_select(self, stmt: Select, ctx: EvalContext) -> SelectPlan:
        alias_columns = self.bind_select(stmt)
        order_items = self.effective_order_items(stmt, alias_columns)
        aggregates = self.collect_aggregates(stmt, order_items)
        columns = self.output_columns(stmt, alias_columns)

        if self._columnar_routing(ctx) and stmt.from_table is not None:
            fast = self._try_columnar_aggregate(
                stmt, ctx, alias_columns, order_items, aggregates)
            if fast is not None:
                top: PlanNode = fast
                if stmt.order_by:
                    top = Sort(top, order_items)
                if stmt.limit is not None or stmt.offset is not None:
                    top = Limit(top, stmt.limit, stmt.offset)
                return self._finish(top, columns, alias_columns)

        stream = self._try_streaming_limit(stmt, ctx, alias_columns,
                                           order_items, aggregates,
                                           columns)
        if stream is not None:
            return stream

        # No aggregation/grouping above the joins means the last join's
        # output order survives to the Sort — a SortMergeJoin satisfying
        # the ORDER BY then elides it (the costing credit and the
        # structural elision below use the same predicate).
        elision_order = (order_items if not stmt.group_by
                         and not aggregates else None)

        if stmt.from_table is None:
            source: PlanNode = OneRow()
        else:
            source = self.plan_scan(stmt.from_table.name,
                                    stmt.from_table.alias, stmt.where, ctx,
                                    alias_columns)
            planned = {stmt.from_table.alias}
            for position, join in enumerate(stmt.joins):
                last = position == len(stmt.joins) - 1
                source = self.plan_join(
                    source, join, stmt.where, ctx, planned, alias_columns,
                    sort_elision_order=elision_order if last else None)
                planned.add(join.table.alias)
        join_root = source
        binder = self._binder(alias_columns)
        if stmt.where is not None:
            source = Filter(source, stmt.where, binder=binder)

        if stmt.group_by or aggregates:
            top: PlanNode = HashAggregate(
                source, stmt.group_by, aggregates, stmt.having, stmt.items,
                order_items, est_rows=source.est_rows, binder=binder)
        else:
            top = Project(source, stmt.items, order_items, columns,
                          est_rows=source.est_rows, binder=binder)
        if stmt.order_by and not self._sorted_by_merge(
                join_root, elision_order, alias_columns):
            top = Sort(top, order_items)
        if stmt.distinct:
            top = Distinct(top)
        if stmt.limit is not None or stmt.offset is not None:
            top = Limit(top, stmt.limit, stmt.offset)
        return self._finish(top, columns, alias_columns)

    def _finish(self, top: PlanNode, columns: List[str],
                alias_columns: Dict[str, Sequence[str]]) -> SelectPlan:
        recost_plan(top, self.db)
        return SelectPlan(root=top, columns=columns,
                          alias_columns=alias_columns,
                          guards=self.guards)

    def _sorted_by_merge(self, join_root: PlanNode,
                         elision_order: Optional[Sequence[OrderItem]],
                         alias_columns: Dict[str, Sequence[str]]) -> bool:
        """True when the ORDER BY is already satisfied by a top-level
        SortMergeJoin's emission order (Filter/Project/Distinct/Limit all
        preserve it)."""
        if elision_order is None or not isinstance(join_root,
                                                   SortMergeJoin):
            return False
        return self._order_satisfied(
            join_root.sorted_columns(),
            {join_root.outer.alias: join_root.outer.table,
             join_root.join.table.alias: join_root.join.table.name},
            elision_order, alias_columns,
            emitted_nulls_first=(join_root.join.kind == "LEFT"))

    # ------------------------------------------------------------------
    # Streaming Limit pipelines (index-order scan, no materialize/sort)
    # ------------------------------------------------------------------

    def _try_streaming_limit(self, stmt: Select, ctx: EvalContext,
                             alias_columns: Dict[str, Sequence[str]],
                             order_items: Sequence[OrderItem],
                             aggregates: List[FunctionCall],
                             columns: List[str]) -> Optional[SelectPlan]:
        """``SELECT ... FROM t [WHERE ...] ORDER BY <indexed column>
        LIMIT n`` streams through an IndexOrderScan + StreamingLimit
        instead of materialize-and-sort, when the ordering column has an
        ordering index and index order provably equals the Sort order
        (see ``_order_satisfied``; DESC flips the walk, and NULLS-LAST
        then matches even for nullable columns).  Eligibility is purely
        structural, so every node (and cache hit) agrees."""
        if not self._cost_based():
            return None
        if stmt.from_table is None or stmt.joins:
            return None
        if aggregates or stmt.group_by or stmt.distinct:
            return None
        if stmt.limit is None or len(order_items) != 1:
            return None
        if self.tx.provenance or ctx.as_of_height is not None:
            return None
        item = order_items[0]
        if not isinstance(item.expr, ColumnRef):
            return None
        alias = stmt.from_table.alias
        table = stmt.from_table.name
        col = column_of_alias(item.expr, alias,
                              alias_columns.get(alias, ()))
        if col is None:
            return None
        schema = self.db.catalog.schema_of(table)
        column = schema.column(col)
        if column.type_name.upper() not in self._ORDER_SAFE_TYPES:
            return None
        # Ascending index order emits NULLs first, Sort puts them last —
        # a nullable column only streams descending (reversed walk ends
        # with NULLs, which is exactly NULLS LAST).
        if item.ascending and not column.not_null:
            return None
        index_name = self._order_index_for(table, col)
        if index_name is None:
            return None
        scan = self._plan_index_order_scan(
            table, alias, stmt.where, ctx, alias_columns, index_name,
            col, descending=not item.ascending)
        binder = self._binder(alias_columns)
        source: PlanNode = scan
        if stmt.where is not None:
            source = Filter(source, stmt.where, binder=binder)
        top: PlanNode = Project(source, stmt.items, order_items, columns,
                                binder=binder)
        top = StreamingLimit(top, stmt.limit, stmt.offset, scan)
        return self._finish(top, columns, alias_columns)

    # ------------------------------------------------------------------
    # Columnar aggregate pushdown (AS OF fast path)
    # ------------------------------------------------------------------

    _VECTOR_NUMERIC_TYPES = frozenset({
        "INT", "INTEGER", "BIGINT", "SERIAL", "INT4", "INT8",
        "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL", "TIMESTAMP",
    })

    def _try_columnar_aggregate(self, stmt: Select, ctx: EvalContext,
                                alias_columns: Dict[str, Sequence[str]],
                                order_items: Sequence[OrderItem],
                                aggregates: List[FunctionCall]
                                ) -> Optional[ColumnarAggregate]:
        """Build a vectorized :class:`ColumnarAggregate` when the whole
        statement shape is covered, else None (the generic ColumnarScan
        pipeline handles it).  Covered means: single table, aggregates
        over plain columns (``sum``/``avg`` on numeric types only — the
        row store's string "sum" concatenates in content order, which a
        vector fold cannot reproduce), GROUP BY plain columns with an
        ORDER BY covering every group column (so output order is fully
        determined and node-independent), and a WHERE of sargable
        conjuncts.  No HAVING / DISTINCT / joins / subqueries."""
        if stmt.joins or stmt.distinct or stmt.having is not None:
            return None
        if not aggregates:
            return None
        alias = stmt.from_table.alias
        table = stmt.from_table.name
        inner_cols = alias_columns.get(alias, ())
        schema = self.db.catalog.schema_of(table)

        group_cols: List[str] = []
        for group in stmt.group_by:
            col = column_of_alias(group, alias, inner_cols)
            if col is None:
                return None
            group_cols.append(col)

        agg_specs: List[AggSpec] = []
        agg_index: Dict[str, int] = {}
        for call in aggregates:
            if call.distinct:
                return None
            if call.star:
                if call.name != "count":
                    return None
                spec = AggSpec(expr_fingerprint(call), "count", None,
                               star=True)
            else:
                if len(call.args) != 1:
                    return None
                col = column_of_alias(call.args[0], alias, inner_cols)
                if col is None:
                    return None
                if call.name in {"sum", "avg"} and \
                        schema.column(col).type_name.upper() not in \
                        self._VECTOR_NUMERIC_TYPES:
                    return None
                spec = AggSpec(expr_fingerprint(call), call.name, col)
            agg_index[spec.fingerprint] = len(agg_specs)
            agg_specs.append(spec)

        def spec_of(expr: Expr) -> Optional[Tuple[str, int]]:
            if isinstance(expr, FunctionCall):
                pos = agg_index.get(expr_fingerprint(expr))
                return None if pos is None else ("agg", pos)
            col = column_of_alias(expr, alias, inner_cols)
            if col is not None and col in group_cols:
                return ("group", group_cols.index(col))
            return None

        output_specs: List[Tuple[str, int]] = []
        for item in stmt.items:
            spec = spec_of(item.expr)
            if spec is None:
                return None
            output_specs.append(spec)

        order_specs: List[Tuple[str, int]] = []
        ordered_groups: Set[str] = set()
        for order in order_items:
            spec = spec_of(order.expr)
            if spec is None:
                return None
            if spec[0] == "group":
                ordered_groups.add(group_cols[spec[1]])
            order_specs.append(spec)
        if group_cols and set(group_cols) - ordered_groups:
            # Without a total order over the group keys the emission
            # order would leak physical ingest order — the row store
            # emits first-encounter-over-content order instead, and the
            # two must stay byte-identical.
            return None

        predicates: List[VectorPredicate] = []
        if stmt.where is not None:
            for conj in conjuncts(stmt.where):
                pred = self._vector_predicate(conj, alias, inner_cols)
                if pred is None:
                    return None
                predicates.append(pred)

        scan = self._plan_columnar_scan(table, alias, stmt.where, ctx,
                                        alias_columns)
        return ColumnarAggregate(
            scan, predicates, group_cols, agg_specs, output_specs,
            order_specs, list(stmt.items),
            est_rows=scan.est_rows if group_cols else 1.0)

    def _vector_predicate(self, conj: Expr, alias: str,
                          inner_cols: Sequence[str]
                          ) -> Optional[VectorPredicate]:
        """Lower one WHERE conjunct to a vector predicate (column-left
        normalized), or None when its shape is not covered.  Covered
        shapes: comparisons and BETWEEN against row-free values,
        non-negated IN-lists of row-free items, and LIKE / NOT LIKE
        against a row-free pattern (a literal prefix also feeds the
        zone-map pruner)."""
        from repro.sql.ast_nodes import InList, Like

        if isinstance(conj, InList) and not conj.negated:
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None or not conj.items:
                return None
            if not all(self._row_free(item, alias, inner_cols)
                       for item in conj.items):
                return None
            return VectorPredicate(
                "in", col,
                items=[compile_expr(item, None) for item in conj.items])
        if isinstance(conj, Like):
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None or \
                    not self._row_free(conj.pattern, alias, inner_cols):
                return None
            return VectorPredicate(
                "like", col, pattern=compile_expr(conj.pattern, None),
                negated=conj.negated)
        if isinstance(conj, BinaryOp) and conj.op in {
                "=", "<", "<=", ">", ">="}:
            col = column_of_alias(conj.left, alias, inner_cols)
            other = conj.right
            op = conj.op
            if col is None:
                col = column_of_alias(conj.right, alias, inner_cols)
                other = conj.left
                op = {"<": ">", "<=": ">=", ">": "<",
                      ">=": "<="}.get(op, op)
            if col is None or not self._row_free(other, alias, inner_cols):
                return None
            return VectorPredicate("cmp", col, op=op,
                                   const=compile_expr(other, None))
        if isinstance(conj, Between) and not conj.negated:
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None:
                return None
            if not self._row_free(conj.low, alias, inner_cols) or \
                    not self._row_free(conj.high, alias, inner_cols):
                return None
            return VectorPredicate("between", col,
                                   low=compile_expr(conj.low, None),
                                   high=compile_expr(conj.high, None))
        return None


