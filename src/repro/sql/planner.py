"""Binder + logical→physical planner.

Stage 1 (**bind**): resolve every table reference against the catalog and
build the alias→columns map the rest of planning (and ``*`` expansion)
uses.  ORDER BY references to select-list aliases are resolved here into a
side list of effective order items — the parsed AST is never mutated, so a
cached statement (stored procedures re-execute the same tree) can't see a
corrupted ORDER BY.

Stage 2 (**physical planning**): pick access paths and join strategies
using the live row counts the catalog exposes (:meth:`Catalog.stats_of`):

* scans: sargable bounds (evaluated against the statement's parameters /
  PL variables / outer row context) feed the same leading-column index
  scoring the old executor used, so index choice — and therefore the
  candidate set the phantom/stale window checks inspect — is unchanged;
* joins: an equi-key join becomes a :class:`HashJoin` (build the inner
  side once, probe per outer row) when costing says so and the flow allows
  it; otherwise a :class:`NestedLoopJoin` with dynamic per-row index
  probes.  Under ``tx.require_index`` (the execute-order-in-parallel flow)
  a hash build whose scan no index can serve is never chosen — the
  nested-loop probes keep every predicate read index-backed, preserving
  the paper's section 4.3 rule.

``EXPLAIN <stmt>`` renders the physical tree (:func:`render_plan`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analytics.operators import (
    AggSpec,
    ColumnarAggregate,
    ColumnarScan,
    VectorPredicate,
)
from repro.sql import functions
from repro.sql.ast_nodes import (
    Between, BinaryOp, ColumnRef, Expr, FunctionCall, Join,
    OrderItem, Select, SelectItem, Star, SubqueryExpr,
)
from repro.sql.expressions import (
    COMPILE_STATS,
    EvalContext,
    compile_expr,
    expr_fingerprint,
)
from repro.sql.plan import (
    PROVENANCE_COLUMNS,
    DynamicProbe,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    OneRow,
    PlanNode,
    Project,
    SeqScan,
    Sort,
    column_of_alias,
    conjuncts,
    extract_bounds,
    rank_indexes,
    render_plan,
    scan_estimate,
)
from repro.sql.plancache import ScanGuard

# ---------------------------------------------------------------------------
# Per-query planning/execution timing (bench harness reads this)
# ---------------------------------------------------------------------------

class QueryTimings:
    """Process-wide accumulator of per-statement plan/execute times,
    plan-cache hit/miss counts, and expression-compilation cost."""

    def __init__(self):
        self._lock = threading.Lock()
        self.statements = 0
        self.plan_seconds = 0.0
        self.exec_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    def record(self, plan_seconds: float, exec_seconds: float,
               cache_hit: Optional[bool] = None) -> None:
        with self._lock:
            self.statements += 1
            self.plan_seconds += plan_seconds
            self.exec_seconds += exec_seconds
            if cache_hit is True:
                self.cache_hits += 1
            elif cache_hit is False:
                self.cache_misses += 1

    def reset(self) -> None:
        with self._lock:
            self.statements = 0
            self.plan_seconds = 0.0
            self.exec_seconds = 0.0
            self.cache_hits = 0
            self.cache_misses = 0
        COMPILE_STATS.reset()

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            n = self.statements or 1
            out = {
                "statements": self.statements,
                "plan_ms_total": round(self.plan_seconds * 1e3, 3),
                "exec_ms_total": round(self.exec_seconds * 1e3, 3),
                "plan_ms_avg": round(self.plan_seconds / n * 1e3, 4),
                "exec_ms_avg": round(self.exec_seconds / n * 1e3, 4),
                "plan_cache_hits": self.cache_hits,
                "plan_cache_misses": self.cache_misses,
            }
        out.update(COMPILE_STATS.snapshot())
        return out


QUERY_TIMINGS = QueryTimings()


class timed:
    """Context manager capturing a perf_counter interval."""

    def __enter__(self):
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self.started
        return False


# ---------------------------------------------------------------------------
# Plan containers
# ---------------------------------------------------------------------------

@dataclass
class SelectPlan:
    """A planned SELECT: operator tree + binder output.

    The tree is a reusable *template*: operators hold compiled
    expressions and structural choices but no per-execution values
    (scan bounds re-derive from the live context), so the plan cache can
    hand the same instance to any number of executions.  ``guards``
    capture the structural access-path choices; the cache re-validates
    them before every reuse.
    """

    root: PlanNode
    columns: List[str]
    alias_columns: Dict[str, Sequence[str]] = field(default_factory=dict)
    guards: List[ScanGuard] = field(default_factory=list)

    def explain(self) -> List[str]:
        return render_plan(self.root)


class Planner:
    """Plans statements for one database + one transaction."""

    def __init__(self, db, tx):
        self.db = db
        self.tx = tx
        # One ScanGuard per statically planned scan (in planning order);
        # the plan cache replays these against each execution context.
        self.guards: List[ScanGuard] = []
        # Bounds extracted while planning, by scan-node id — handed to
        # the first execution so scans don't re-extract them (cache hits
        # get the equivalent map from guard validation).
        self.scan_bounds: Dict[int, Dict[str, Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def bind_select(self, stmt: Select) -> Dict[str, Sequence[str]]:
        """alias -> column names for every table the query references."""
        alias_columns: Dict[str, Sequence[str]] = {}
        if stmt.from_table is not None:
            refs = [stmt.from_table] + [j.table for j in stmt.joins]
            for ref in refs:
                schema = self.db.catalog.schema_of(ref.name)
                alias_columns[ref.alias] = schema.column_names()
        return alias_columns

    def effective_order_items(
            self, stmt: Select,
            alias_columns: Dict[str, Sequence[str]]) -> List[OrderItem]:
        """ORDER BY may reference select-list aliases (``SELECT sum(v) AS
        total ... ORDER BY total``); resolve those refs to the aliased
        expression *without mutating the parsed tree*.  Real columns
        shadow aliases."""
        aliases = {item.alias: item.expr for item in stmt.items
                   if item.alias is not None}
        known_columns = {col for cols in alias_columns.values()
                         for col in cols}
        out: List[OrderItem] = []
        for order in stmt.order_by:
            expr = order.expr
            if isinstance(expr, ColumnRef) and expr.table is None \
                    and expr.name in aliases \
                    and expr.name not in known_columns:
                out.append(OrderItem(expr=aliases[expr.name],
                                     ascending=order.ascending))
            else:
                out.append(order)
        return out

    def collect_aggregates(self, stmt: Select,
                           order_items: Sequence[OrderItem]
                           ) -> List[FunctionCall]:
        found: List[FunctionCall] = []
        seen: Set[str] = set()

        def visit(expr: Optional[Expr]):
            if expr is None:
                return
            for node in expr.walk():
                if isinstance(node, FunctionCall) and \
                        node.name in functions.AGGREGATE_NAMES:
                    key = expr_fingerprint(node)
                    if key not in seen:
                        seen.add(key)
                        found.append(node)

        for item in stmt.items:
            visit(item.expr)
        visit(stmt.having)
        for order in order_items:
            visit(order.expr)
        return found

    def output_columns(self, stmt: Select,
                       alias_columns: Dict[str, Sequence[str]]) -> List[str]:
        columns: List[str] = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                aliases = ([item.expr.table] if item.expr.table
                           else sorted(alias_columns))
                for alias in aliases:
                    cols = alias_columns.get(alias, [])
                    columns.extend(cols)
                    if self.tx.provenance:
                        columns.extend(
                            c for c in PROVENANCE_COLUMNS if c not in cols)
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                columns.append(item.expr.name)
            elif isinstance(item.expr, FunctionCall):
                columns.append(item.expr.name)
            else:
                columns.append(f"column{len(columns) + 1}")
        return columns

    # ------------------------------------------------------------------
    # Scan planning
    # ------------------------------------------------------------------

    def _columnar_routing(self, ctx: EvalContext) -> bool:
        """True when this statement executes at a pinned AS OF height and
        the node's columnar replica may serve its scans."""
        return (ctx.as_of_height is not None
                and not self.tx.provenance
                and getattr(self.db, "columnstore", None) is not None
                and self.db.columnstore.enabled)

    def _plan_columnar_scan(self, table: str, alias: str,
                            where: Optional[Expr], ctx: EvalContext,
                            alias_columns: Dict[str, Sequence[str]]
                            ) -> ColumnarScan:
        """Columnar access path for an AS OF scan.  The guard records no
        index signature (the store has none to validate) but still
        threads the extracted bounds to execution for zone-map pruning."""
        stats = self.db.catalog.stats_of(table)
        scan = ColumnarScan(table, alias, where,
                            est_rows=float(max(stats.total_versions, 0)))
        guard = ScanGuard(table=table, alias=alias, where=where,
                          alias_columns=alias_columns, signature=None,
                          columnar=True)
        guard.node = scan
        self.guards.append(guard)
        self.scan_bounds[id(scan)] = extract_bounds(where, alias, ctx,
                                                    alias_columns)
        return scan

    def plan_scan(self, table: str, alias: str, where: Optional[Expr],
                  ctx: EvalContext,
                  alias_columns: Optional[Dict[str, Sequence[str]]] = None
                  ) -> SeqScan:
        """Access path for one table: IndexScan when the sargable bounds
        (resolved against ``ctx``) are served by an index, SeqScan
        otherwise.  The node stores the WHERE *expression* (templates
        carry no per-execution values); execution re-derives the bounds
        from the live context and re-runs the same deterministic index
        scoring over them.  A :class:`ScanGuard` capturing the structural
        choice is recorded for plan-cache validation.

        Statements pinned to an AS OF height route to the columnar
        replica instead (:class:`ColumnarScan`) whenever it is enabled —
        reads below the committed height have no SSI obligations, so the
        index-backed-predicate rules don't apply there."""
        if alias_columns is None:
            schema = self.db.catalog.schema_of(table)
            alias_columns = {alias: schema.column_names()}
        if self._columnar_routing(ctx):
            return self._plan_columnar_scan(table, alias, where, ctx,
                                            alias_columns)
        heap = self.db.catalog.heap_of(table)
        stats = self.db.catalog.stats_of(table)
        sources: Dict[str, List[Expr]] = {}
        bounds = extract_bounds(where, alias, ctx, alias_columns, sources)
        best = rank_indexes(heap, bounds)
        guard = ScanGuard(
            table=table, alias=alias, where=where,
            alias_columns=alias_columns,
            signature=None if best is None
            else (best[0].name, best[1], best[2]))
        self.guards.append(guard)
        if best is None:
            scan: SeqScan = SeqScan(
                table, alias, where,
                est_rows=float(max(stats.live_rows, 0)))
        else:
            index, n_eq, has_range = best
            depth = n_eq + (1 if has_range else 0) or 1
            used_cols = index.columns[:depth]
            conditions: List[Expr] = []
            for col in used_cols:
                for conj in sources.get(col, []):
                    if conj not in conditions:
                        conditions.append(conj)
            unique_covered = index.unique and n_eq == len(index.columns)
            est = scan_estimate(stats.live_rows, n_eq, has_range,
                                unique_covered)
            scan = IndexScan(table, alias, where, index.name, conditions,
                             est_rows=est, unique_covered=unique_covered)
        guard.node = scan
        self.scan_bounds[id(scan)] = bounds
        return scan

    # ------------------------------------------------------------------
    # Join planning
    # ------------------------------------------------------------------

    def _find_equi_keys(self, combined: Optional[Expr], join: Join,
                        planned_aliases: Set[str],
                        alias_columns: Dict[str, Sequence[str]]
                        ) -> List[Tuple[str, Expr]]:
        """(inner column, probe expression) pairs from ``=`` conjuncts of
        ON/WHERE linking the joined table to already-planned aliases."""
        if combined is None:
            return []
        alias = join.table.alias
        inner_cols = alias_columns.get(alias, ())
        keys: List[Tuple[str, Expr]] = []
        for conj in conjuncts(combined):
            if not (isinstance(conj, BinaryOp) and conj.op == "="):
                continue
            col = column_of_alias(conj.left, alias, inner_cols)
            other = conj.right
            if col is None:
                col = column_of_alias(conj.right, alias, inner_cols)
                other = conj.left
            if col is None:
                continue
            if self._probe_expr_ok(other, alias, inner_cols,
                                   planned_aliases, alias_columns):
                keys.append((col, other))
        return keys

    def _probe_expr_ok(self, expr: Expr, inner_alias: str,
                       inner_cols: Sequence[str],
                       planned_aliases: Set[str],
                       alias_columns: Dict[str, Sequence[str]]) -> bool:
        """True when ``expr`` can be evaluated per probe row: no stars,
        aggregates or subqueries, no references to the inner table, and at
        least one reference to an already-planned alias (a pure constant
        is a build-side bound, not a join key)."""
        references_planned = False
        for node in expr.walk():
            if isinstance(node, Star):
                return False
            if isinstance(node, FunctionCall) and \
                    node.name in functions.AGGREGATE_NAMES:
                return False
            if isinstance(node, SubqueryExpr):
                return False
            if isinstance(node, ColumnRef):
                if node.table == inner_alias:
                    return False
                if node.table is None and node.name in inner_cols:
                    return False
                if node.table in planned_aliases:
                    references_planned = True
                elif node.table is None and any(
                        node.name in alias_columns.get(a, ())
                        for a in planned_aliases):
                    references_planned = True
        return references_planned

    def _predict_probe(self, combined: Optional[Expr], join: Join,
                       planned_aliases: Set[str],
                       alias_columns: Dict[str, Sequence[str]]
                       ) -> Tuple[Optional[str], List[Expr], int, bool, bool]:
        """Structural dry-run of the per-row bound extraction: which index
        would a nested-loop probe use, given that outer-row columns become
        constants at probe time?  Returns (index_name, condition exprs,
        n_eq, has_range, unique_covered)."""
        alias = join.table.alias
        inner_cols = alias_columns.get(alias, ())
        heap = self.db.catalog.heap_of(join.table.name)
        shapes: Dict[str, Dict[str, Any]] = {}
        sources: Dict[str, List[Expr]] = {}
        if combined is not None:
            for conj in conjuncts(combined):
                self._predict_shape(conj, alias, inner_cols, shapes,
                                    sources)
        best = rank_indexes(heap, shapes)
        if best is None:
            return None, [], 0, False, False
        index, n_eq, has_range = best
        depth = n_eq + (1 if has_range else 0)
        conditions: List[Expr] = []
        for col in index.columns[:depth]:
            for conj in sources.get(col, []):
                if conj not in conditions:
                    conditions.append(conj)
        unique_covered = index.unique and n_eq == len(index.columns)
        return index.name, conditions, n_eq, has_range, unique_covered

    def _predict_shape(self, conj: Expr, alias: str,
                       inner_cols: Sequence[str],
                       shapes: Dict[str, Dict[str, Any]],
                       sources: Dict[str, List[Expr]]) -> None:
        """One conjunct's contribution to the predicted probe-time bound
        shapes — mirrors extract_bounds structurally (comparisons,
        BETWEEN, IN) with outer-row columns standing in as constants."""
        from repro.sql.ast_nodes import Between, InList

        if isinstance(conj, BinaryOp) and conj.op in {
                "=", "<", "<=", ">", ">="}:
            col = column_of_alias(conj.left, alias, inner_cols)
            other = conj.right
            op = conj.op
            if col is None:
                col = column_of_alias(conj.right, alias, inner_cols)
                other = conj.left
                op = {"<": ">", "<=": ">=", ">": "<",
                      ">=": "<="}.get(op, op)
            if col is None or not self._row_free(other, alias, inner_cols):
                return
            slot = shapes.setdefault(col, {})
            if op == "=":
                slot["eq"] = True
            elif op in {"<", "<="}:
                slot["high"] = (True, True)
            else:
                slot["low"] = (True, True)
            sources.setdefault(col, []).append(conj)
            return
        if isinstance(conj, Between) and not conj.negated:
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None:
                return
            if self._row_free(conj.low, alias, inner_cols):
                shapes.setdefault(col, {})["low"] = (True, True)
                sources.setdefault(col, []).append(conj)
            if self._row_free(conj.high, alias, inner_cols):
                shapes.setdefault(col, {})["high"] = (True, True)
                sources.setdefault(col, []).append(conj)
            return
        if isinstance(conj, InList) and not conj.negated:
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None:
                return
            if all(self._row_free(item, alias, inner_cols)
                   for item in conj.items) and conj.items:
                slot = shapes.setdefault(col, {})
                slot["low"] = (True, True)
                slot["high"] = (True, True)
                sources.setdefault(col, []).append(conj)

    def _row_free(self, expr: Expr, inner_alias: str,
                  inner_cols: Sequence[str]) -> bool:
        """Structurally independent of the scanned (inner) row."""
        for node in expr.walk():
            if isinstance(node, Star):
                return False
            if isinstance(node, FunctionCall) and \
                    node.name in functions.AGGREGATE_NAMES:
                return False
            if isinstance(node, SubqueryExpr):
                return False
            if isinstance(node, ColumnRef):
                if node.table == inner_alias:
                    return False
                if node.table is None and node.name in inner_cols:
                    return False
        return True

    def _binder(self, alias_columns: Dict[str, Sequence[str]]):
        """Compile-time column pre-resolution input: disabled under
        provenance sessions, whose pseudo-columns extend row environments
        beyond the schema the binder knows about."""
        return None if self.tx.provenance else alias_columns

    def plan_join(self, outer: PlanNode, join: Join, where: Optional[Expr],
                  ctx: EvalContext, planned_aliases: Set[str],
                  alias_columns: Dict[str, Sequence[str]]) -> PlanNode:
        # Conditions usable for the inner access path may come from the
        # ON clause and from the WHERE clause.
        combined = join.on
        if where is not None:
            combined = (where if combined is None
                        else BinaryOp("AND", combined, where))
        alias = join.table.alias
        schema = self.db.catalog.schema_of(join.table.name)
        stats = self.db.catalog.stats_of(join.table.name)
        inner_live = max(stats.live_rows, 0)

        keys = self._find_equi_keys(combined, join, planned_aliases,
                                    alias_columns)
        probe_index, probe_conds, n_eq, has_range, unique_covered = \
            self._predict_probe(combined, join, planned_aliases,
                                alias_columns)

        # Strategy choice must be *deterministic across nodes*: in-flight
        # transactions make live_rows interleaving-sensitive, and nodes
        # that picked different plans would record different SIREAD sets
        # and diverge on SSI abort decisions.  So the decision is purely
        # structural (statement + catalog shape); the row counts below
        # only annotate EXPLAIN output.
        hash_allowed = bool(keys)
        build: Optional[SeqScan] = None
        if hash_allowed:
            # The build side is scanned once, so only conjuncts constant
            # at plan time (no outer-row references) can bound it.
            build = self.plan_scan(join.table.name, alias, combined, ctx,
                                   alias_columns)
            if self.tx.require_index and not schema.system \
                    and not self.tx.provenance \
                    and not isinstance(build, IndexScan):
                # A full build scan would violate the EO flow's
                # index-backed-predicate rule; per-row index probes keep
                # the old (narrow, index-served) predicate reads.
                hash_allowed = False
            elif unique_covered or (isinstance(outer, IndexScan)
                                    and outer.unique_covered):
                # Point lookups on either side — a unique fully-bound
                # probe, or a single-row outer — make per-row index
                # probes cheaper than building a hash over the whole
                # inner side, and they record the narrowest possible
                # predicate reads.  Both facts are structural, so the
                # choice stays deterministic across nodes.
                hash_allowed = False

        outer_est = max(outer.est_rows, 1.0)
        binder = self._binder(alias_columns)
        if hash_allowed:
            return HashJoin(outer, join, build, keys,
                            est_rows=max(outer_est, build.est_rows),
                            binder=binder)

        probe_est = (scan_estimate(inner_live, n_eq, has_range,
                                   unique_covered)
                     if probe_index is not None else float(inner_live))
        probe = DynamicProbe(join.table.name, alias, probe_index,
                             probe_conds, est_rows=probe_est)
        return NestedLoopJoin(outer, join, combined, probe,
                              est_rows=outer_est * max(probe_est, 1.0),
                              binder=binder)

    # ------------------------------------------------------------------
    # SELECT planning
    # ------------------------------------------------------------------

    def plan_select(self, stmt: Select, ctx: EvalContext) -> SelectPlan:
        alias_columns = self.bind_select(stmt)
        order_items = self.effective_order_items(stmt, alias_columns)
        aggregates = self.collect_aggregates(stmt, order_items)
        columns = self.output_columns(stmt, alias_columns)

        if self._columnar_routing(ctx) and stmt.from_table is not None:
            fast = self._try_columnar_aggregate(
                stmt, ctx, alias_columns, order_items, aggregates)
            if fast is not None:
                top: PlanNode = fast
                if stmt.order_by:
                    top = Sort(top, order_items)
                if stmt.limit is not None or stmt.offset is not None:
                    top = Limit(top, stmt.limit, stmt.offset)
                return SelectPlan(root=top, columns=columns,
                                  alias_columns=alias_columns,
                                  guards=self.guards)

        if stmt.from_table is None:
            source: PlanNode = OneRow()
        else:
            source = self.plan_scan(stmt.from_table.name,
                                    stmt.from_table.alias, stmt.where, ctx,
                                    alias_columns)
            planned = {stmt.from_table.alias}
            for join in stmt.joins:
                source = self.plan_join(source, join, stmt.where, ctx,
                                        planned, alias_columns)
                planned.add(join.table.alias)
        binder = self._binder(alias_columns)
        if stmt.where is not None:
            source = Filter(source, stmt.where, binder=binder)

        if stmt.group_by or aggregates:
            top: PlanNode = HashAggregate(
                source, stmt.group_by, aggregates, stmt.having, stmt.items,
                order_items, est_rows=source.est_rows, binder=binder)
        else:
            top = Project(source, stmt.items, order_items, columns,
                          est_rows=source.est_rows, binder=binder)
        if stmt.order_by:
            top = Sort(top, order_items)
        if stmt.distinct:
            top = Distinct(top)
        if stmt.limit is not None or stmt.offset is not None:
            top = Limit(top, stmt.limit, stmt.offset)
        return SelectPlan(root=top, columns=columns,
                          alias_columns=alias_columns,
                          guards=self.guards)

    # ------------------------------------------------------------------
    # Columnar aggregate pushdown (AS OF fast path)
    # ------------------------------------------------------------------

    _VECTOR_NUMERIC_TYPES = frozenset({
        "INT", "INTEGER", "BIGINT", "SERIAL", "INT4", "INT8",
        "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL", "TIMESTAMP",
    })

    def _try_columnar_aggregate(self, stmt: Select, ctx: EvalContext,
                                alias_columns: Dict[str, Sequence[str]],
                                order_items: Sequence[OrderItem],
                                aggregates: List[FunctionCall]
                                ) -> Optional[ColumnarAggregate]:
        """Build a vectorized :class:`ColumnarAggregate` when the whole
        statement shape is covered, else None (the generic ColumnarScan
        pipeline handles it).  Covered means: single table, aggregates
        over plain columns (``sum``/``avg`` on numeric types only — the
        row store's string "sum" concatenates in content order, which a
        vector fold cannot reproduce), GROUP BY plain columns with an
        ORDER BY covering every group column (so output order is fully
        determined and node-independent), and a WHERE of sargable
        conjuncts.  No HAVING / DISTINCT / joins / subqueries."""
        if stmt.joins or stmt.distinct or stmt.having is not None:
            return None
        if not aggregates:
            return None
        alias = stmt.from_table.alias
        table = stmt.from_table.name
        inner_cols = alias_columns.get(alias, ())
        schema = self.db.catalog.schema_of(table)

        group_cols: List[str] = []
        for group in stmt.group_by:
            col = column_of_alias(group, alias, inner_cols)
            if col is None:
                return None
            group_cols.append(col)

        agg_specs: List[AggSpec] = []
        agg_index: Dict[str, int] = {}
        for call in aggregates:
            if call.distinct:
                return None
            if call.star:
                if call.name != "count":
                    return None
                spec = AggSpec(expr_fingerprint(call), "count", None,
                               star=True)
            else:
                if len(call.args) != 1:
                    return None
                col = column_of_alias(call.args[0], alias, inner_cols)
                if col is None:
                    return None
                if call.name in {"sum", "avg"} and \
                        schema.column(col).type_name.upper() not in \
                        self._VECTOR_NUMERIC_TYPES:
                    return None
                spec = AggSpec(expr_fingerprint(call), call.name, col)
            agg_index[spec.fingerprint] = len(agg_specs)
            agg_specs.append(spec)

        def spec_of(expr: Expr) -> Optional[Tuple[str, int]]:
            if isinstance(expr, FunctionCall):
                pos = agg_index.get(expr_fingerprint(expr))
                return None if pos is None else ("agg", pos)
            col = column_of_alias(expr, alias, inner_cols)
            if col is not None and col in group_cols:
                return ("group", group_cols.index(col))
            return None

        output_specs: List[Tuple[str, int]] = []
        for item in stmt.items:
            spec = spec_of(item.expr)
            if spec is None:
                return None
            output_specs.append(spec)

        order_specs: List[Tuple[str, int]] = []
        ordered_groups: Set[str] = set()
        for order in order_items:
            spec = spec_of(order.expr)
            if spec is None:
                return None
            if spec[0] == "group":
                ordered_groups.add(group_cols[spec[1]])
            order_specs.append(spec)
        if group_cols and set(group_cols) - ordered_groups:
            # Without a total order over the group keys the emission
            # order would leak physical ingest order — the row store
            # emits first-encounter-over-content order instead, and the
            # two must stay byte-identical.
            return None

        predicates: List[VectorPredicate] = []
        if stmt.where is not None:
            for conj in conjuncts(stmt.where):
                pred = self._vector_predicate(conj, alias, inner_cols)
                if pred is None:
                    return None
                predicates.append(pred)

        scan = self._plan_columnar_scan(table, alias, stmt.where, ctx,
                                        alias_columns)
        return ColumnarAggregate(
            scan, predicates, group_cols, agg_specs, output_specs,
            order_specs, list(stmt.items),
            est_rows=scan.est_rows if group_cols else 1.0)

    def _vector_predicate(self, conj: Expr, alias: str,
                          inner_cols: Sequence[str]
                          ) -> Optional[VectorPredicate]:
        """Lower one WHERE conjunct to a vector predicate (column-left
        normalized), or None when its shape is not covered."""
        if isinstance(conj, BinaryOp) and conj.op in {
                "=", "<", "<=", ">", ">="}:
            col = column_of_alias(conj.left, alias, inner_cols)
            other = conj.right
            op = conj.op
            if col is None:
                col = column_of_alias(conj.right, alias, inner_cols)
                other = conj.left
                op = {"<": ">", "<=": ">=", ">": "<",
                      ">=": "<="}.get(op, op)
            if col is None or not self._row_free(other, alias, inner_cols):
                return None
            return VectorPredicate("cmp", col, op=op,
                                   const=compile_expr(other, None))
        if isinstance(conj, Between) and not conj.negated:
            col = column_of_alias(conj.operand, alias, inner_cols)
            if col is None:
                return None
            if not self._row_free(conj.low, alias, inner_cols) or \
                    not self._row_free(conj.high, alias, inner_cols):
                return None
            return VectorPredicate("between", col,
                                   low=compile_expr(conj.low, None),
                                   high=compile_expr(conj.high, None))
        return None


