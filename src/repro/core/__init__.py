"""Top-level facade: network bootstrap, clients, provenance."""

from repro.core.client import BlockchainClient
from repro.core.network import BlockchainNetwork
from repro.core.provenance import ProvenanceAuditor

__all__ = ["BlockchainClient", "BlockchainNetwork", "ProvenanceAuditor"]
