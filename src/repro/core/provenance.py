"""Provenance query helpers (section 4.2, Table 3).

Provenance queries see *every committed version* of every row — active or
superseded — plus the pseudo-columns ``xmin`` / ``xmax`` / ``creator`` /
``deleter`` / ``row_id``, and can join against pgLedger (whose ``txid``
column holds the node-local xid, matching the pseudo-columns).

The helpers below package the two audit patterns of Table 3; arbitrary
provenance SQL can always be issued through
:meth:`BlockchainClient.provenance_query`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.node.ledger import LEDGER_TABLE


class ProvenanceAuditor:
    """Audit queries over one node's history, via a client session."""

    def __init__(self, client):
        self.client = client

    # ------------------------------------------------------------------

    def rows_touched_by_user_between_blocks(
            self, table: str, username: str, low_block: int,
            high_block: int) -> List[Dict[str, Any]]:
        """Table 3, query 1: all rows of ``table`` updated (superseded or
        created) by ``username`` between two block heights.

        Matches versions whose creating or deleting transaction belongs to
        the user and committed in the window."""
        sql = (
            f"SELECT t.*, l.blocknumber AS block_number "
            f"FROM {table} t, {LEDGER_TABLE} l "
            f"WHERE l.blocknumber BETWEEN $1 AND $2 "
            f"AND l.username = $3 AND l.status = 'committed' "
            f"AND t.xmin = l.txid")
        created = self.client.provenance_query(
            sql, params=(low_block, high_block, username)).as_dicts()
        sql_deleted = (
            f"SELECT t.*, l.blocknumber AS block_number "
            f"FROM {table} t, {LEDGER_TABLE} l "
            f"WHERE l.blocknumber BETWEEN $1 AND $2 "
            f"AND l.username = $3 AND l.status = 'committed' "
            f"AND t.xmax = l.txid")
        superseded = self.client.provenance_query(
            sql_deleted, params=(low_block, high_block,
                                 username)).as_dicts()
        return created + superseded

    def history_of_row(self, table: str, key_column: str,
                       key_value: Any,
                       users: Optional[Sequence[str]] = None,
                       since_seconds: Optional[float] = None
                       ) -> List[Dict[str, Any]]:
        """Table 3, query 2: the full version history of one logical row,
        optionally filtered to updates by specific users within a recent
        wall-clock window."""
        clauses = [f"t.{key_column} = $1", "t.xmin = l.txid"]
        params: List[Any] = [key_value]
        if users:
            placeholders = ", ".join(
                f"${len(params) + 1 + i}" for i in range(len(users)))
            clauses.append(f"l.username IN ({placeholders})")
            params.extend(users)
        if since_seconds is not None:
            clauses.append(
                f"l.committime > now() - ${len(params) + 1}")
            params.append(float(since_seconds))
        sql = (
            f"SELECT t.*, l.blocknumber AS block_number, "
            f"l.username AS changed_by "
            f"FROM {table} t, {LEDGER_TABLE} l "
            f"WHERE {' AND '.join(clauses)} "
            f"ORDER BY l.blocknumber")
        return self.client.provenance_query(sql,
                                            params=tuple(params)).as_dicts()

    def version_chain(self, table: str, key_column: str,
                      key_value: Any) -> List[Dict[str, Any]]:
        """All versions of a logical row in creation order, with MVCC
        headers — raw material for custom audits."""
        sql = (f"SELECT t.* FROM {table} t WHERE t.{key_column} = $1 "
               f"ORDER BY t.creator, t.row_id")
        return self.client.provenance_query(sql,
                                            params=(key_value,)).as_dicts()

    def transactions_of_user(self, username: str) -> List[Dict[str, Any]]:
        """Every ledger entry recorded for ``username``."""
        sql = (f"SELECT tx_id, blocknumber, procedure, status, reason "
               f"FROM {LEDGER_TABLE} WHERE username = $1 "
               f"ORDER BY blocknumber, blockposition")
        return self.client.query(sql, params=(username,)).as_dicts()
