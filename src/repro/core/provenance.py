"""Provenance query helpers (section 4.2, Table 3).

Provenance queries see *every committed version* of every row — active or
superseded — plus the pseudo-columns ``xmin`` / ``xmax`` / ``creator`` /
``deleter`` / ``row_id``, and can join against pgLedger (whose ``txid``
column holds the node-local xid, matching the pseudo-columns).

The helpers below package the two audit patterns of Table 3; arbitrary
provenance SQL can always be issued through
:meth:`BlockchainClient.provenance_query`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.node.ledger import LEDGER_TABLE


class ProvenanceAuditor:
    """Audit queries over one node's history, via a client session."""

    def __init__(self, client):
        self.client = client

    # ------------------------------------------------------------------

    def rows_touched_by_user_between_blocks(
            self, table: str, username: str, low_block: int,
            high_block: int) -> List[Dict[str, Any]]:
        """Table 3, query 1: all rows of ``table`` updated (superseded or
        created) by ``username`` between two block heights.

        Matches versions whose creating or deleting transaction belongs to
        the user and committed in the window."""
        sql = (
            f"SELECT t.*, l.blocknumber AS block_number "
            f"FROM {table} t, {LEDGER_TABLE} l "
            f"WHERE l.blocknumber BETWEEN $1 AND $2 "
            f"AND l.username = $3 AND l.status = 'committed' "
            f"AND t.xmin = l.txid")
        created = self.client.provenance_query(
            sql, params=(low_block, high_block, username)).as_dicts()
        sql_deleted = (
            f"SELECT t.*, l.blocknumber AS block_number "
            f"FROM {table} t, {LEDGER_TABLE} l "
            f"WHERE l.blocknumber BETWEEN $1 AND $2 "
            f"AND l.username = $3 AND l.status = 'committed' "
            f"AND t.xmax = l.txid")
        superseded = self.client.provenance_query(
            sql_deleted, params=(low_block, high_block,
                                 username)).as_dicts()
        return created + superseded

    def history_of_row(self, table: str, key_column: str,
                       key_value: Any,
                       users: Optional[Sequence[str]] = None,
                       since_seconds: Optional[float] = None
                       ) -> List[Dict[str, Any]]:
        """Table 3, query 2: the full version history of one logical row,
        optionally filtered to updates by specific users within a recent
        wall-clock window."""
        clauses = [f"t.{key_column} = $1", "t.xmin = l.txid"]
        params: List[Any] = [key_value]
        if users:
            placeholders = ", ".join(
                f"${len(params) + 1 + i}" for i in range(len(users)))
            clauses.append(f"l.username IN ({placeholders})")
            params.extend(users)
        if since_seconds is not None:
            clauses.append(
                f"l.committime > now() - ${len(params) + 1}")
            params.append(float(since_seconds))
        sql = (
            f"SELECT t.*, l.blocknumber AS block_number, "
            f"l.username AS changed_by "
            f"FROM {table} t, {LEDGER_TABLE} l "
            f"WHERE {' AND '.join(clauses)} "
            f"ORDER BY l.blocknumber")
        return self.client.provenance_query(sql,
                                            params=tuple(params)).as_dicts()

    def version_chain(self, table: str, key_column: str,
                      key_value: Any) -> List[Dict[str, Any]]:
        """All versions of a logical row in creation order, with MVCC
        headers — raw material for custom audits.

        Served from the peer's columnar replica (the analytics path):
        committed versions with creator/deleter vectors are exactly what
        the chunks store, so the audit never scans the transactional
        heap — and keeps working for history that vacuum has already
        pruned from the row store.  Falls back to the provenance SQL
        path when the replica is disabled."""
        from repro.errors import AnalyticsDisabledError

        try:
            return self.client.peer.row_history(
                table, key_column, key_value, username=self.client.name)
        except AnalyticsDisabledError:
            sql = (f"SELECT t.* FROM {table} t WHERE t.{key_column} = $1 "
                   f"ORDER BY t.creator, t.row_id")
            return self.client.provenance_query(
                sql, params=(key_value,)).as_dicts()

    def state_as_of(self, table: str, height: int) -> List[Dict[str, Any]]:
        """The full committed contents of ``table`` as of block
        ``height`` — a time-travel snapshot off the columnar replica."""
        return self.client.query_as_of(
            f"SELECT * FROM {table}", height).as_dicts()

    def diff_between(self, table: str, low_height: int,
                     high_height: int) -> Dict[str, List[Dict[str, Any]]]:
        """Rows created and rows deleted in ``(low_height,
        high_height]`` with MVCC headers — the block-window audit,
        computed from the columnar creator/deleter vectors instead of a
        full provenance scan.  Falls back to provenance SQL when the
        replica is disabled."""
        from repro.errors import AnalyticsDisabledError

        try:
            return self.client.peer.block_diff(
                table, low_height, high_height, username=self.client.name)
        except AnalyticsDisabledError:
            created = self.client.provenance_query(
                f"SELECT t.* FROM {table} t WHERE t.creator > $1 "
                f"AND t.creator <= $2 ORDER BY t.creator, t.row_id",
                params=(low_height, high_height)).as_dicts()
            deleted = self.client.provenance_query(
                f"SELECT t.* FROM {table} t WHERE t.deleter > $1 "
                f"AND t.deleter <= $2 ORDER BY t.deleter, t.row_id",
                params=(low_height, high_height)).as_dicts()
            return {"created": created, "deleted": deleted}

    def transactions_of_user(self, username: str) -> List[Dict[str, Any]]:
        """Every ledger entry recorded for ``username``."""
        sql = (f"SELECT tx_id, blocknumber, procedure, status, reason "
               f"FROM {LEDGER_TABLE} WHERE username = $1 "
               f"ORDER BY blocknumber, blockposition")
        return self.client.query(sql, params=(username,)).as_dicts()
