"""Client API (the libpq-equivalent of section 4.3).

A client holds a registered identity, signs its transactions, and talks to

* the ordering service (order-then-execute flow: "clients submit
  transactions directly to any one of the ordering service nodes"), or
* a database peer (execute-order-in-parallel: the peer executes, forwards
  to other peers, and submits to ordering in the background),

then listens for the commit/abort notification.  Extra APIs mirror the
paper's libpq additions: fetch the latest block height, submit provenance
queries, and drive contract deployment through the system contracts.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence

from repro.chain.transaction import ProcedureCall, Transaction
from repro.common.identity import Identity
from repro.errors import ReproError
from repro.node.backend import FLOW_EXECUTE_ORDER
from repro.node.peer import DatabaseNode
from repro.sql.executor import Result


class BlockchainClient:
    """A signing client bound to one network."""

    def __init__(self, identity: Identity, network,
                 peer: Optional[DatabaseNode] = None):
        self.identity = identity
        self.network = network
        self._peer = peer
        self._nonce = itertools.count(1)
        self._orderer_rr = itertools.count(0)

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.identity.name

    @property
    def peer(self) -> DatabaseNode:
        """The peer this client is connected to (defaults to its org's
        first peer, falling back to the network's first node)."""
        if self._peer is not None:
            return self._peer
        for node in self.network.nodes:
            if node.organization == self.identity.organization:
                return node
        return self.network.nodes[0]

    def use_peer(self, node: DatabaseNode) -> None:
        self._peer = node

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def invoke(self, procedure: str, *args: Any,
               snapshot_height: Optional[int] = None) -> str:
        """Invoke a smart contract asynchronously; returns the tx id.

        Order-then-execute: a fresh unique identifier is generated (the
        client may submit the same call twice) and the transaction goes to
        an orderer.  Execute-order-in-parallel: the identifier is
        hash(user, call, height) per section 3.4.3 and the transaction goes
        to the client's peer.
        """
        call = ProcedureCall(procedure=procedure, args=tuple(args))
        if self.network.flow == FLOW_EXECUTE_ORDER:
            height = snapshot_height if snapshot_height is not None \
                else self.peer.block_height()
            tx = Transaction.create(self.identity, call,
                                    snapshot_height=height)
            self.peer.submit_transaction(tx)
        else:
            nonce = next(self._nonce)
            tx_id = Transaction.derive_tx_id(
                f"{self.name}#{nonce}", call, None)
            tx = Transaction.create(self.identity, call, tx_id=tx_id)
            orderers = self.network.ordering.orderer_names
            pick = orderers[next(self._orderer_rr) % len(orderers)]
            self.network.ordering.submit(tx, orderer_name=pick)
        return tx.tx_id

    def invoke_and_wait(self, procedure: str, *args: Any,
                        snapshot_height: Optional[int] = None,
                        timeout: float = 30.0) -> Dict[str, Any]:
        """Invoke, run the network until the transaction's outcome is
        known (or ``timeout`` simulated seconds pass), return the ledger
        entry (status committed/aborted, block, reason)."""
        tx_id = self.invoke(procedure, *args,
                            snapshot_height=snapshot_height)
        waited = 0.0
        step = 0.5
        while waited < timeout:
            self.network.advance(step)
            waited += step
            entry = self.peer.ledger.entry(tx_id)
            if entry is not None and entry.get("status") != "pending":
                return entry
        return self.status(tx_id)

    def status(self, tx_id: str) -> Dict[str, Any]:
        """This client's view of a transaction's outcome (pgLedger)."""
        entry = self.peer.ledger.entry(tx_id)
        if entry is None:
            return {"tx_id": tx_id, "status": "unknown"}
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Read-only SELECT against the connected peer (never recorded on
        the chain)."""
        return self.peer.query(sql, username=self.name, params=params)

    def query_as_of(self, sql: str, height: Optional[int] = None,
                    params: Sequence[Any] = ()) -> Result:
        """Time-travel SELECT: every statement reads the committed state
        as of block ``height`` (default: the peer's committed height),
        served by the peer's columnar replica with no SSI bookkeeping.
        Statements may also carry an explicit ``AS OF BLOCK h`` clause,
        which overrides the pin."""
        return self.peer.query_as_of(sql, height=height,
                                     username=self.name, params=params)

    def provenance_query(self, sql: str,
                         params: Sequence[Any] = ()) -> Result:
        """Provenance query: sees every committed row version and the
        xmin/xmax/creator/deleter pseudo-columns (section 4.2)."""
        return self.peer.query(sql, username=self.name, params=params,
                               provenance=True)

    def block_height(self) -> int:
        return self.peer.block_height()

    # ------------------------------------------------------------------
    # Contract deployment workflow (section 3.7)
    # ------------------------------------------------------------------

    def propose_contract(self, create_function_sql: str) -> str:
        """Admin: record a deployment proposal; returns its deploy id once
        the proposal commits."""
        result = self.invoke_and_wait("create_deployTx",
                                      create_function_sql)
        if result.get("status") != "committed":
            raise ReproError(
                f"deployment proposal failed: {result.get('reason')}")
        # The deploy id is deterministic (hash of the SQL text).
        from repro.common.crypto import sha256_hex
        return sha256_hex(create_function_sql.encode())[:24]

    def approve_contract(self, deploy_id: str) -> Dict[str, Any]:
        return self.invoke_and_wait("approve_deployTx", deploy_id)

    def reject_contract(self, deploy_id: str,
                        reason: str = "") -> Dict[str, Any]:
        return self.invoke_and_wait("reject_deployTx", deploy_id, reason)

    def comment_contract(self, deploy_id: str,
                         comment: str) -> Dict[str, Any]:
        return self.invoke_and_wait("comment_deployTx", deploy_id, comment)

    def submit_contract(self, deploy_id: str) -> Dict[str, Any]:
        return self.invoke_and_wait("submit_deployTx", deploy_id)
