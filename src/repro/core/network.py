"""Network bootstrap (section 3.7) and the top-level facade.

``BlockchainNetwork`` wires a full permissioned deployment in one call:
per-organization identities (admin, peers, orderers), the chosen ordering
service (kafka / raft / pbft), genesis configuration (schema DDL + initial
contracts), database nodes running either transaction flow, and client
onboarding.  Everything runs on one discrete-event scheduler, so a test or
example drives the whole network deterministically with
:meth:`BlockchainNetwork.settle`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.chain.block import make_genesis
from repro.common.events import EventScheduler
from repro.common.identity import (
    Certificate,
    Identity,
    ROLE_ADMIN,
    ROLE_CLIENT,
    ROLE_ORDERER,
    ROLE_PEER,
)
from repro.consensus import OrderingConfig, make_ordering_service
from repro.core.client import BlockchainClient
from repro.errors import BlockValidationError, ReproError, StuckNodeError
from repro.net.transport import LAN, LatencyModel, SimNetwork, \
    make_chaos_plan
from repro.node.backend import FLOW_EXECUTE_ORDER, FLOW_ORDER_EXECUTE
from repro.node.peer import DatabaseNode
from repro.obs import MetricsRegistry
from repro.sql.plancache import PlanCache


class BlockchainNetwork:
    """A complete in-process permissioned blockchain database network."""

    def __init__(self, organizations: Sequence[str],
                 flow: str = FLOW_ORDER_EXECUTE,
                 consensus: str = "kafka",
                 block_size: int = 100,
                 block_timeout: float = 1.0,
                 latency: LatencyModel = LAN,
                 peers_per_org: int = 1,
                 orderers_per_org: int = 1,
                 schema_sql: str = "",
                 contracts: Sequence[str] = (),
                 checkpoint_interval: int = 1,
                 min_block_signatures: int = 1,
                 share_plan_templates: bool = True,
                 seed: int = 7):
        if not organizations:
            raise ReproError("need at least one organization")
        self.organizations = list(organizations)
        self.flow = flow
        self.scheduler = EventScheduler()
        # One process-wide metrics registry: transport counters live at
        # the top level, each node's subsystems register under a
        # ``node=<name>`` label scope (obs/metrics.py).
        self.metrics = MetricsRegistry()
        self.network = SimNetwork(self.scheduler, default_latency=latency,
                                  seed=seed,
                                  metrics=self.metrics.scope())
        # CI soak hook: REPRO_CHAOS_PLAN=<profile> installs a seeded
        # low-grade fault plan under the whole suite (see net/transport's
        # CHAOS_PROFILES); the anti-entropy sync layer must absorb it.
        chaos_profile = os.environ.get("REPRO_CHAOS_PLAN", "")
        if chaos_profile:
            self.network.set_fault_plan(
                make_chaos_plan(chaos_profile, seed=seed))

        # -- identities ----------------------------------------------------
        self.admins: Dict[str, Identity] = {}
        self.peer_identities: List[Identity] = []
        self.orderer_identities: List[Identity] = []
        for org in self.organizations:
            admin = Identity.create(f"admin@{org}", org, ROLE_ADMIN)
            self.admins[org] = admin
            for i in range(peers_per_org):
                self.peer_identities.append(Identity.create(
                    f"peer{i}@{org}", org, ROLE_PEER, issuer=admin))
            for i in range(orderers_per_org):
                self.orderer_identities.append(Identity.create(
                    f"orderer{i}@{org}", org, ROLE_ORDERER, issuer=admin))

        # -- genesis ---------------------------------------------------------
        genesis = make_genesis(metadata={
            "genesis": True,
            "organizations": self.organizations,
            "flow": flow,
            "schema_sql": schema_sql,
            "contracts": list(contracts),
        })

        # -- ordering service ---------------------------------------------------
        config = OrderingConfig(block_size=block_size,
                                block_timeout=block_timeout,
                                consensus=consensus)
        self.ordering = make_ordering_service(
            consensus, self.scheduler, self.network,
            self.orderer_identities, config, genesis)
        from repro.obs import Tracer
        self.ordering.attach_observability(
            self.metrics.scope(service="ordering"),
            tracer=Tracer(self.metrics.scope(service="ordering")))

        # -- database nodes -------------------------------------------------------
        bootstrap_certs: List[Certificate] = (
            [admin.certificate for admin in self.admins.values()]
            + [ident.certificate for ident in self.peer_identities]
            + [ident.certificate for ident in self.orderer_identities])
        # All peers of one process replay the same DDL history, so they
        # can share one plan-template cache (keyed on the catalog's
        # structural version token): N nodes hold one template set
        # instead of N copies.  Opt out with share_plan_templates=False.
        self.shared_plan_cache = PlanCache(
            metrics=self.metrics.scope(cache="shared")) \
            if share_plan_templates else None
        self.nodes: List[DatabaseNode] = []
        for identity in self.peer_identities:
            node = DatabaseNode(
                identity, self.scheduler, self.network, flow=flow,
                organizations=self.organizations, ordering=self.ordering,
                min_block_signatures=min_block_signatures,
                checkpoint_interval=checkpoint_interval,
                plan_cache=self.shared_plan_cache,
                metrics_registry=self.metrics)
            node.register_certificates(bootstrap_certs)
            self.nodes.append(node)
        self.ordering.start()
        self.settle()  # deliver genesis everywhere

        self.clients: Dict[str, BlockchainClient] = {}
        self._admin_clients: Dict[str, BlockchainClient] = {}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def node_of(self, org: str, index: int = 0) -> DatabaseNode:
        matches = [n for n in self.nodes if n.organization == org]
        if not matches:
            raise ReproError(f"no peers for organization {org!r}")
        return matches[index]

    @property
    def primary_node(self) -> DatabaseNode:
        return self.nodes[0]

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------

    def register_client(self, name: str, org: str) -> BlockchainClient:
        """Onboard a client user: the org admin issues a certificate which
        every node installs (bootstrap path; see also create_userTx for the
        on-chain path)."""
        if org not in self.admins:
            raise ReproError(f"unknown organization {org!r}")
        identity = Identity.create(name, org, ROLE_CLIENT,
                                   issuer=self.admins[org])
        for node in self.nodes:
            node.certs.register(identity.certificate)
        client = BlockchainClient(identity, self)
        self.clients[name] = client
        return client

    def admin_client(self, org: str) -> BlockchainClient:
        """A client wielding the organization's admin identity (system
        contracts require it)."""
        if org not in self._admin_clients:
            self._admin_clients[org] = BlockchainClient(self.admins[org],
                                                        self)
        return self._admin_clients[org]

    # ------------------------------------------------------------------
    # Simulation control
    # ------------------------------------------------------------------

    def settle(self, timeout: float = 30.0,
               expect_progress: bool = True) -> None:
        """Run the event loop until the queue drains or ``timeout``
        simulated seconds elapse (consensus protocols with periodic
        heartbeats never fully drain the queue).  Also waits out every
        live node's pipelined block finalization, so "settled" means
        fully applied — tests can read heaps/digests directly after.

        With ``expect_progress`` (the default), a live node whose block
        store stopped advancing while its block buffer still holds work
        raises :class:`StuckNodeError` naming the gap, instead of
        returning silently with a wedged node.  Pass
        ``expect_progress=False`` while faults (partitions, crashes, an
        aggressive fault plan) are deliberately still active."""
        deadline = self.scheduler.now + timeout
        self.scheduler.run(until=deadline)
        for _ in range(2):
            # Draining may submit checkpoint digests the background stage
            # parked (foreground-only ordering-service calls), which
            # enqueues new events — run the loop once more so they land.
            for node in self.nodes:
                if not node.crashed:
                    node.db.drain_commits()
            self.scheduler.run(until=deadline)
        if expect_progress:
            for node in self.nodes:
                diagnosis = self._stuck_diagnosis(node)
                if diagnosis is not None:
                    raise StuckNodeError(diagnosis)

    def _stuck_diagnosis(self, node: DatabaseNode) -> Optional[str]:
        """Explain why ``node`` cannot drain its block buffer, if so."""
        if node.crashed or not node._block_buffer:
            return None
        height = node.blockstore.height
        buffered = sorted(node._block_buffer)
        head = node._block_buffer.get(height + 1)
        peer_heights = dict(sorted(node.sync._peer_heights.items()))
        if head is None:
            return (f"node {node.name} stuck at height {height}: "
                    f"waiting for block {height + 1}, buffered "
                    f"{buffered}, peer heights {peer_heights}, sync "
                    f"{node.sync.stats()}")
        try:
            min_sigs = 0 if head.number == 0 else node.min_block_signatures
            tip = node.blockstore.tip()
            head.verify(node.certs,
                        expected_prev_hash=(tip.block_hash if tip
                                            else None),
                        min_signatures=min_sigs)
        except BlockValidationError as exc:
            return (f"node {node.name} stuck at height {height}: block "
                    f"{height + 1} buffered but unverifiable ({exc}); "
                    f"buffered {buffered}")
        return None  # head verifies: processing is merely in flight

    def advance(self, seconds: float) -> None:
        """Run the event loop for a bounded amount of simulated time."""
        self.scheduler.run(until=self.scheduler.now + seconds)

    # ------------------------------------------------------------------
    # Whole-network assertions (used heavily by tests)
    # ------------------------------------------------------------------

    def assert_consistent(self, tables: Optional[Sequence[str]] = None
                          ) -> None:
        """Verify every live node holds identical committed state."""
        live = [n for n in self.nodes if not n.crashed]
        if len(live) < 2:
            return
        for node in live:   # fingerprints read heaps outside transactions
            node.db.drain_commits()
        reference = live[0]
        table_names = list(tables) if tables else [
            t for t in reference.db.catalog.table_names()
            if t != "pgledger"]
        for table in table_names:
            want = self._table_fingerprint(reference, table)
            for node in live[1:]:
                got = self._table_fingerprint(node, table)
                if want != got:
                    raise AssertionError(
                        f"table {table!r} diverged between "
                        f"{reference.name} and {node.name}:\n"
                        f"  {want}\n  {got}")
        heights = {n.name: n.db.committed_height for n in live}
        if len(set(heights.values())) > 1:
            raise AssertionError(f"nodes at different heights: {heights}")

    @staticmethod
    def _table_fingerprint(node: DatabaseNode, table: str):
        from repro.storage.visibility import latest_committed_visible
        heap = node.db.catalog.heap_of(table)
        rows = []
        for version in heap.all_versions():
            if latest_committed_visible(version, node.db.statuses):
                rows.append(tuple(sorted(version.values.items(),
                                         key=lambda kv: kv[0])))
        return sorted(rows, key=repr)
