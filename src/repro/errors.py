"""Exception hierarchy for the blockchain relational database.

Every error raised by the library derives from :class:`ReproError` so
applications can catch a single base class.  The hierarchy mirrors the
subsystems: SQL parsing/execution, MVCC/serialization failures, contract
determinism violations, consensus faults, and node-level protocol errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# SQL engine
# ---------------------------------------------------------------------------

class SQLError(ReproError):
    """Base class for SQL lexing, parsing, planning and execution errors."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class CatalogError(SQLError):
    """Unknown or duplicate table/column/index/schema/function."""


class ConstraintViolation(SQLError):
    """A NOT NULL, UNIQUE, PRIMARY KEY or CHECK constraint was violated."""

    def __init__(self, message: str, constraint: str = "", table: str = ""):
        super().__init__(message)
        self.constraint = constraint
        self.table = table


class TypeMismatchError(SQLError):
    """A value does not match the declared column type or an operator's
    operand types are incompatible."""


class ExecutionError(SQLError):
    """Generic runtime failure while executing a statement."""


# ---------------------------------------------------------------------------
# MVCC / transactions
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transaction lifecycle errors."""


class SerializationFailure(TransactionError):
    """The transaction must abort to preserve serializability.

    This is the equivalent of PostgreSQL's SQLSTATE 40001.  ``reason``
    identifies which rule fired (e.g. ``"pivot"``, ``"ww-conflict"``,
    ``"phantom-read"``, ``"stale-read"``, ``"block-aware-near"``).
    """

    def __init__(self, message: str, reason: str = ""):
        super().__init__(message)
        self.reason = reason


class TransactionAborted(TransactionError):
    """Operation attempted on a transaction that has already aborted."""


class TransactionNotActive(TransactionError):
    """Operation attempted on a transaction that is not active."""


class MissingIndexError(SerializationFailure):
    """A predicate read in the execute-order-in-parallel flow had no
    supporting index (paper section 4.3: nodes abort the transaction)."""

    def __init__(self, message: str):
        super().__init__(message, reason="missing-index")


class BlindUpdateError(TransactionError):
    """Blind updates (UPDATE/DELETE without WHERE) are rejected in the
    execute-order-in-parallel flow (paper section 3.4.3)."""


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------

class ContractError(ReproError):
    """Base class for smart-contract errors."""


class DeterminismViolation(ContractError):
    """The procedure uses a construct that is banned because it could
    produce different results on different nodes (paper section 4.3)."""


class ContractNotFound(ContractError):
    """Invocation of a contract that is not deployed."""


class ContractAborted(ContractError):
    """The contract body raised an application-level abort (RAISE)."""


class DeploymentError(ContractError):
    """Deployment lifecycle violation (missing approvals, bad state)."""


# ---------------------------------------------------------------------------
# Crypto / identity
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidSignature(CryptoError):
    """Signature verification failed."""


class UnknownIdentity(CryptoError):
    """No registered certificate for the given user or node."""


class AccessDenied(ReproError):
    """The authenticated user lacks the privilege for the operation."""


# ---------------------------------------------------------------------------
# Consensus / ordering
# ---------------------------------------------------------------------------

class ConsensusError(ReproError):
    """Base class for ordering-service errors."""


class NotLeaderError(ConsensusError):
    """Request sent to a node that is not the current leader."""


class QuorumNotReached(ConsensusError):
    """Not enough votes/acks to make progress."""


# ---------------------------------------------------------------------------
# Node / network protocol
# ---------------------------------------------------------------------------

class NodeError(ReproError):
    """Base class for peer-node protocol errors."""


class BlockValidationError(NodeError):
    """A received block failed hash-chain or signature validation."""


class DuplicateTransactionError(NodeError):
    """A transaction with the same unique identifier was already seen."""


class CheckpointMismatchError(NodeError):
    """A node's write-set hash diverged from the network's (section 3.3.4:
    evidence that the node is faulty or malicious)."""


class RecoveryError(NodeError):
    """Failure during the section 3.6 recovery procedure."""


class StuckNodeError(NodeError):
    """A live node stopped making progress: its block buffer holds blocks
    it cannot process (a delivery gap the sync layer could not heal, or a
    head block that fails verification) past a settle deadline."""


# ---------------------------------------------------------------------------
# Analytics (columnar replica)
# ---------------------------------------------------------------------------

class AnalyticsDisabledError(NodeError):
    """The columnar replica is disabled and cannot serve the request."""
