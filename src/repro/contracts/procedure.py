"""Smart contracts as stored procedures.

A contract is a PL/SQL-style function: typed parameters, declared local
variables, and a body of SQL + procedural statements (IF/ELSIF, SELECT
INTO, PERFORM, RAISE, RETURN).  The body is parsed and determinism-checked
at deployment time; invocation binds arguments, executes the body inside
the caller's transaction, and records the contract version used (a
replacement aborts in-flight transactions on the old version,
section 3.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ContractAborted, ContractError
from repro.mvcc.transaction import TransactionContext
from repro.sql.ast_nodes import (
    PLAssign, PLBlock, PLIf, PLPerform, PLRaise, PLReturn, Select, Statement,
)
from repro.sql.catalog import coerce_value
from repro.sql.executor import AccessChecker, Executor, Result
from repro.sql.expressions import EvalContext, compiled
from repro.sql.parser import parse_procedure_body
from repro.contracts.determinism import assert_deterministic


@dataclass
class Procedure:
    """A deployed smart contract."""

    name: str
    params: List[Tuple[str, str]]          # (name, type)
    returns: str
    body_text: str
    body: PLBlock
    version: int = 1
    deployer: str = ""
    system: bool = False                   # system contracts skip checks

    @classmethod
    def compile(cls, name: str, params: Sequence[Tuple[str, str]],
                returns: str, body_text: str, deployer: str = "",
                system: bool = False, version: int = 1) -> "Procedure":
        """Parse and determinism-check a contract body."""
        body = parse_procedure_body(body_text)
        if not system:
            assert_deterministic(body, name)
        return cls(name=name, params=list(params), returns=returns,
                   body_text=body_text, body=body, version=version,
                   deployer=deployer, system=system)


class ProcedureRuntime:
    """Interprets procedure bodies within a transaction."""

    def __init__(self, database, acl: Optional[AccessChecker] = None):
        self.db = database
        self.acl = acl

    def invoke(self, tx: TransactionContext, procedure: Procedure,
               args: Sequence[Any]) -> Any:
        """Run ``procedure(args)`` inside ``tx``; returns its RETURN value."""
        if len(args) != len(procedure.params):
            raise ContractError(
                f"{procedure.name}() expects {len(procedure.params)} "
                f"argument(s), got {len(args)}")
        variables: Dict[str, Any] = {}
        for (pname, ptype), value in zip(procedure.params, args):
            variables[pname] = (None if value is None
                                else coerce_value(value, ptype, pname))
        executor = Executor(self.db, tx, acl=self.acl)
        ctx = EvalContext(
            variables=variables,
            allow_nondeterministic=tx.allow_nondeterministic,
            subquery_fn=executor._run_subquery)
        for name, type_name, init in procedure.body.declarations:
            variables[name] = compiled(init)(ctx) if init is not None \
                else None
        tx.contract_versions[procedure.name] = procedure.version

        result = self._run_body(procedure.body.statements, executor, ctx,
                                variables, tx)
        if result is not _NO_RETURN:
            tx.return_value = result
            return result
        return None

    def _run_body(self, statements: List[Statement], executor: Executor,
                  ctx: EvalContext, variables: Dict[str, Any],
                  tx: TransactionContext) -> Any:
        for stmt in statements:
            outcome = self._run_statement(stmt, executor, ctx, variables, tx)
            if outcome is not _NO_RETURN:
                return outcome
        return _NO_RETURN

    def _run_statement(self, stmt: Statement, executor: Executor,
                       ctx: EvalContext, variables: Dict[str, Any],
                       tx: TransactionContext) -> Any:
        if isinstance(stmt, PLAssign):
            variables[stmt.name] = compiled(stmt.value)(ctx)
            return _NO_RETURN
        if isinstance(stmt, PLIf):
            for cond, body in stmt.branches:
                if compiled(cond)(ctx) is True:
                    return self._run_body(body, executor, ctx, variables, tx)
            return self._run_body(stmt.else_body, executor, ctx, variables,
                                  tx)
        if isinstance(stmt, PLRaise):
            message = compiled(stmt.message)(ctx)
            if stmt.level == "NOTICE":
                tx.notices.append(str(message))
                return _NO_RETURN
            raise ContractAborted(str(message))
        if isinstance(stmt, PLReturn):
            return compiled(stmt.value)(ctx) if stmt.value is not None \
                else None
        if isinstance(stmt, PLPerform):
            executor.execute(stmt.select, variables=variables)
            return _NO_RETURN
        if isinstance(stmt, Select) and stmt.into_vars:
            result = executor.execute(stmt, variables=variables)
            self._assign_into(stmt.into_vars, result, variables)
            return _NO_RETURN
        executor.execute(stmt, variables=variables)
        return _NO_RETURN

    @staticmethod
    def _assign_into(into_vars: List[str], result: Result,
                     variables: Dict[str, Any]) -> None:
        row = result.rows[0] if result.rows else tuple(
            None for _ in into_vars)
        if len(row) < len(into_vars):
            raise ContractError(
                f"SELECT INTO expected {len(into_vars)} column(s), got "
                f"{len(row)}")
        for name, value in zip(into_vars, row):
            variables[name] = value


class _NoReturn:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<no-return>"


_NO_RETURN = _NoReturn()
