"""Static determinism checks for smart-contract procedures.

Section 4.3: to keep independent execution deterministic across nodes, a
PL/SQL procedure may not use

* date/time functions (``now()``, ``current_timestamp`` ...),
* random functions,
* sequence manipulation functions,
* system information functions,
* row headers (``xmin``/``xmax``/``creator``/``deleter``) in WHERE clauses,
* ``LIMIT``/``OFFSET`` without ``ORDER BY`` (ordering must pin the result),
* ``SELECT *`` whole-table reads without a predicate (full scans traverse
  heap order, and the parallel flow requires index-backed reads),
* ``PROVENANCE`` queries (their pgLedger commit times are node-local).

Violations are reported all at once so contract authors can fix them in a
single pass.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.errors import DeterminismViolation
from repro.sql import functions
from repro.sql.ast_nodes import (
    ColumnRef, Delete, Expr, FunctionCall, Insert, PLAssign, PLBlock, PLIf,
    PLPerform, PLRaise, PLReturn, Select, Star, Statement, SubqueryExpr,
    Update,
)

_ROW_HEADERS = frozenset({"xmin", "xmax", "creator", "deleter", "ctid"})


def _iter_statements(statements) -> Iterator[Statement]:
    for stmt in statements:
        yield stmt
        if isinstance(stmt, PLIf):
            for _, body in stmt.branches:
                yield from _iter_statements(body)
            yield from _iter_statements(stmt.else_body)
        elif isinstance(stmt, PLBlock):
            yield from _iter_statements(stmt.statements)


def _iter_exprs(stmt: Statement) -> Iterator[Expr]:
    if isinstance(stmt, Select):
        for item in stmt.items:
            yield item.expr
        for clause in (stmt.where, stmt.having, stmt.limit, stmt.offset):
            if clause is not None:
                yield clause
        yield from stmt.group_by
        for order in stmt.order_by:
            yield order.expr
        for join in stmt.joins:
            if join.on is not None:
                yield join.on
    elif isinstance(stmt, Insert):
        for row in stmt.rows:
            yield from row
        if stmt.select is not None:
            yield from _iter_exprs(stmt.select)
    elif isinstance(stmt, Update):
        for clause in stmt.sets:
            yield clause.value
        if stmt.where is not None:
            yield stmt.where
    elif isinstance(stmt, Delete):
        if stmt.where is not None:
            yield stmt.where
    elif isinstance(stmt, PLAssign):
        yield stmt.value
    elif isinstance(stmt, PLRaise):
        yield stmt.message
    elif isinstance(stmt, PLReturn):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, PLPerform):
        yield from _iter_exprs(stmt.select)
    elif isinstance(stmt, PLIf):
        for cond, _ in stmt.branches:
            yield cond


def _nested_selects(expr: Expr) -> Iterator[Select]:
    for node in expr.walk():
        if isinstance(node, SubqueryExpr):
            yield node.select


def check_determinism(block: PLBlock, name: str = "<procedure>"
                      ) -> List[str]:
    """Return a list of violation messages (empty = deterministic)."""
    violations: List[str] = []

    all_statements = list(_iter_statements(block.statements))
    selects: List[Select] = [s for s in all_statements
                             if isinstance(s, Select)]
    for stmt in all_statements:
        if isinstance(stmt, PLPerform):
            selects.append(stmt.select)
        for expr in _iter_exprs(stmt):
            for sub in _nested_selects(expr):
                selects.append(sub)

    # Declared initializers participate too.
    init_exprs: List[Expr] = [init for _, _, init in block.declarations
                              if init is not None]

    def check_expr(expr: Expr, where: str) -> None:
        for node in expr.walk():
            if isinstance(node, FunctionCall):
                if node.name in functions.NON_DETERMINISTIC_NAMES:
                    violations.append(
                        f"{name}: non-deterministic function "
                        f"{node.name}() used in {where}")
                elif (node.name not in functions.AGGREGATE_NAMES
                      and not functions.is_known(node.name)):
                    violations.append(
                        f"{name}: unknown function {node.name}() in "
                        f"{where} (only whitelisted builtins are allowed)")

    for stmt in all_statements:
        for expr in _iter_exprs(stmt):
            check_expr(expr, type(stmt).__name__)
    for expr in init_exprs:
        check_expr(expr, "DECLARE")

    for select in selects:
        _check_select(select, name, violations)

    return violations


def _check_select(select: Select, name: str, violations: List[str]) -> None:
    if select.provenance:
        violations.append(
            f"{name}: PROVENANCE queries are not allowed inside contracts "
            f"(commit timestamps are node-local)")
    if (select.limit is not None or select.offset is not None) \
            and not select.order_by:
        violations.append(
            f"{name}: LIMIT/OFFSET requires ORDER BY (section 4.3: "
            f"'SELECT statements must specify ORDER BY primary_key when "
            f"using LIMIT or FETCH')")
    if select.where is not None:
        for node in select.where.walk():
            if isinstance(node, ColumnRef) and \
                    node.name.lower() in _ROW_HEADERS:
                violations.append(
                    f"{name}: row header {node.name!r} may not appear in a "
                    f"WHERE clause (section 4.3)")
    has_star = any(isinstance(item.expr, Star) for item in select.items)
    if has_star and select.from_table is not None and select.where is None \
            and not select.joins:
        violations.append(
            f"{name}: 'SELECT * FROM {select.from_table.name}' without a "
            f"predicate is not allowed in contracts (section 4.3: full "
            f"table scans are rejected)")


def assert_deterministic(block: PLBlock, name: str = "<procedure>") -> None:
    """Raise :class:`DeterminismViolation` listing every violation."""
    violations = check_determinism(block, name)
    if violations:
        raise DeterminismViolation("; ".join(violations))
