"""Smart contracts: procedures, determinism checks, registry and the
system contracts of section 3.7."""

from repro.contracts.determinism import (
    assert_deterministic,
    check_determinism,
)
from repro.contracts.procedure import Procedure, ProcedureRuntime
from repro.contracts.registry import ContractRegistry
from repro.contracts.system_contracts import (
    SYSTEM_CONTRACT_NAMES,
    SystemContracts,
    create_system_tables,
)

__all__ = [
    "assert_deterministic", "check_determinism", "Procedure",
    "ProcedureRuntime", "ContractRegistry", "SYSTEM_CONTRACT_NAMES",
    "SystemContracts", "create_system_tables",
]
