"""System smart contracts (section 3.7).

Every node exposes these at bootstrap, in the blockchain schema:

* ``create_deployTx(sql)`` — record a CREATE/REPLACE/DROP FUNCTION
  statement in the deployment table (does not execute it yet),
* ``approve_deployTx(id)`` / ``reject_deployTx(id, reason)`` /
  ``comment_deployTx(id, comment)`` — org admins vote on the deployment,
* ``submit_deployTx(id)`` — executes the recorded statement once *every*
  organization's admin has approved,
* ``create_userTx`` / ``update_userTx`` / ``delete_userTx`` — onboard and
  manage client users with their cryptographic credentials (pgCerts).

They are ordinary blockchain transactions — signed, ordered, committed on
all nodes — so the network keeps an immutable history of contract
governance.  State lives in the replicated system tables
``pgdeployments`` / ``pgdeployvotes`` / ``pgusers``; the in-memory
contract registry and certificate registry are updated through deferred
on-commit actions so aborted transactions leave no trace.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.crypto import sha256_hex
from repro.common.identity import (
    Certificate,
    CertificateRegistry,
    ROLE_ADMIN,
)
from repro.contracts.procedure import Procedure
from repro.contracts.registry import ContractRegistry
from repro.errors import AccessDenied, ContractError, DeploymentError
from repro.mvcc.transaction import TransactionContext
from repro.sql.ast_nodes import CreateFunction, DropFunction
from repro.sql.catalog import ColumnDef, TableSchema
from repro.sql.executor import Executor
from repro.sql.parser import parse_one

SYSTEM_CONTRACT_NAMES = frozenset({
    "create_deployTx", "submit_deployTx", "approve_deployTx",
    "reject_deployTx", "comment_deployTx",
    "create_userTx", "update_userTx", "delete_userTx",
})

DEPLOY_TABLE = "pgdeployments"
VOTE_TABLE = "pgdeployvotes"
USER_TABLE = "pgusers"


def create_system_tables(catalog) -> None:
    """Create the replicated system tables backing the system contracts."""
    catalog.create_table(TableSchema(
        name=DEPLOY_TABLE,
        columns=[
            ColumnDef("deploy_id", "TEXT", not_null=True),
            ColumnDef("sql_text", "TEXT", not_null=True),
            ColumnDef("proposer", "TEXT", not_null=True),
            ColumnDef("status", "TEXT", not_null=True),
        ],
        primary_key=["deploy_id"], system=True), if_not_exists=True)
    catalog.create_table(TableSchema(
        name=VOTE_TABLE,
        columns=[
            ColumnDef("deploy_id", "TEXT", not_null=True),
            ColumnDef("org", "TEXT", not_null=True),
            ColumnDef("admin", "TEXT", not_null=True),
            ColumnDef("action", "TEXT", not_null=True),
            ColumnDef("detail", "TEXT"),
        ],
        primary_key=["deploy_id", "org", "action"], system=True),
        if_not_exists=True)
    catalog.create_table(TableSchema(
        name=USER_TABLE,
        columns=[
            ColumnDef("username", "TEXT", not_null=True),
            ColumnDef("org", "TEXT", not_null=True),
            ColumnDef("role", "TEXT", not_null=True),
            ColumnDef("public_key", "TEXT", not_null=True),
            ColumnDef("issuer", "TEXT", not_null=True),
            ColumnDef("cert_sig", "TEXT", not_null=True),
        ],
        primary_key=["username"], system=True), if_not_exists=True)


class SystemContracts:
    """Python-implemented system contracts bound to one node's state."""

    def __init__(self, database, contracts: ContractRegistry,
                 certs: CertificateRegistry,
                 organizations: Sequence[str]):
        self.db = database
        self.contracts = contracts
        self.certs = certs
        self.organizations = sorted(organizations)
        self._handlers: Dict[str, Callable] = {
            "create_deployTx": self.create_deploy_tx,
            "approve_deployTx": self.approve_deploy_tx,
            "reject_deployTx": self.reject_deploy_tx,
            "comment_deployTx": self.comment_deploy_tx,
            "submit_deployTx": self.submit_deploy_tx,
            "create_userTx": self.create_user_tx,
            "update_userTx": self.create_user_tx,  # same semantics: upsert
            "delete_userTx": self.delete_user_tx,
        }

    # ------------------------------------------------------------------

    def handles(self, name: str) -> bool:
        return name in self._handlers

    def invoke(self, tx: TransactionContext, name: str,
               args: Sequence[Any]) -> Any:
        handler = self._handlers.get(name)
        if handler is None:
            raise ContractError(f"unknown system contract {name!r}")
        self._require_admin(tx.username)
        return handler(tx, *args)

    def _require_admin(self, username: str) -> None:
        cert = self.certs.get(username)
        if cert.role != ROLE_ADMIN:
            raise AccessDenied(
                f"system contracts can only be invoked by organization "
                f"admins; {username!r} has role {cert.role!r} "
                f"(section 3.7)")

    def _executor(self, tx: TransactionContext) -> Executor:
        return Executor(self.db, tx)

    def _sql(self, tx: TransactionContext, sql: str,
             params: Sequence[Any] = ()):
        executor = self._executor(tx)
        result = None
        from repro.sql.parser import parse_sql
        for stmt in parse_sql(sql):
            result = executor.execute(stmt, params=params)
        return result

    # ------------------------------------------------------------------
    # Deployment lifecycle
    # ------------------------------------------------------------------

    def create_deploy_tx(self, tx: TransactionContext,
                         sql_text: str) -> str:
        """Record a deployment proposal; returns its deterministic id."""
        stmt = parse_one(sql_text)
        if not isinstance(stmt, (CreateFunction, DropFunction)):
            raise DeploymentError(
                "create_deployTx only accepts CREATE [OR REPLACE] FUNCTION "
                "or DROP FUNCTION statements")
        if isinstance(stmt, CreateFunction):
            # Compile now so rejection happens at proposal time.
            Procedure.compile(stmt.name, stmt.params, stmt.returns,
                              stmt.body, deployer=tx.username)
            if stmt.name in SYSTEM_CONTRACT_NAMES:
                raise DeploymentError(
                    f"{stmt.name!r} is a reserved system contract name")
        deploy_id = sha256_hex(sql_text.encode())[:24]
        self._sql(tx,
                  f"INSERT INTO {DEPLOY_TABLE} "
                  f"(deploy_id, sql_text, proposer, status) "
                  f"VALUES ($1, $2, $3, 'pending')",
                  params=(deploy_id, sql_text, tx.username))
        tx.return_value = deploy_id
        return deploy_id

    def _vote(self, tx: TransactionContext, deploy_id: str, action: str,
              detail: Optional[str]) -> None:
        result = self._sql(tx,
                           f"SELECT status FROM {DEPLOY_TABLE} WHERE "
                           f"deploy_id = $1", params=(deploy_id,))
        if not result.rows:
            raise DeploymentError(f"no deployment {deploy_id!r}")
        if result.rows[0][0] != "pending":
            raise DeploymentError(
                f"deployment {deploy_id!r} is {result.rows[0][0]}, "
                f"not pending")
        cert = self.certs.get(tx.username)
        if action in ("approve", "reject"):
            # One approve/reject per org; comments are unlimited but keyed,
            # so suffix them with the admin name.
            key_action = action
        else:
            key_action = f"comment:{tx.username}:{tx.xid}"
        self._sql(tx,
                  f"INSERT INTO {VOTE_TABLE} "
                  f"(deploy_id, org, admin, action, detail) "
                  f"VALUES ($1, $2, $3, $4, $5)",
                  params=(deploy_id, cert.organization, tx.username,
                          key_action, detail))

    def approve_deploy_tx(self, tx: TransactionContext,
                          deploy_id: str) -> None:
        """Approve on behalf of the caller's organization — the paper's
        'digital signature provided by the organization's admin' is the
        signature already on this transaction."""
        self._vote(tx, deploy_id, "approve", None)

    def reject_deploy_tx(self, tx: TransactionContext, deploy_id: str,
                         reason: str = "") -> None:
        self._vote(tx, deploy_id, "reject", reason)

    def comment_deploy_tx(self, tx: TransactionContext, deploy_id: str,
                          comment: str) -> None:
        self._vote(tx, deploy_id, "comment", comment)

    def submit_deploy_tx(self, tx: TransactionContext,
                         deploy_id: str) -> None:
        """Execute the proposal once all organizations approved."""
        result = self._sql(tx,
                           f"SELECT sql_text, status FROM {DEPLOY_TABLE} "
                           f"WHERE deploy_id = $1", params=(deploy_id,))
        if not result.rows:
            raise DeploymentError(f"no deployment {deploy_id!r}")
        sql_text, status = result.rows[0]
        if status != "pending":
            raise DeploymentError(
                f"deployment {deploy_id!r} already {status}")
        votes = self._sql(tx,
                          f"SELECT org, action FROM {VOTE_TABLE} WHERE "
                          f"deploy_id = $1", params=(deploy_id,))
        approved = {org for org, action in votes.rows
                    if action == "approve"}
        rejected = {org for org, action in votes.rows if action == "reject"}
        if rejected:
            raise DeploymentError(
                f"deployment {deploy_id!r} was rejected by "
                f"{sorted(rejected)}")
        missing = [org for org in self.organizations if org not in approved]
        if missing:
            raise DeploymentError(
                f"deployment {deploy_id!r} lacks approval from {missing} "
                f"(section 3.7: every organization must approve)")

        stmt = parse_one(sql_text)
        if isinstance(stmt, CreateFunction):
            procedure = Procedure.compile(
                stmt.name, stmt.params, stmt.returns, stmt.body,
                deployer=tx.username)
            tx.on_commit_actions.append(
                lambda: self.contracts.deploy(procedure))
        else:
            name = stmt.name
            tx.on_commit_actions.append(lambda: self.contracts.drop(name))
        self._sql(tx,
                  f"UPDATE {DEPLOY_TABLE} SET status = 'deployed' WHERE "
                  f"deploy_id = $1", params=(deploy_id,))

    # ------------------------------------------------------------------
    # User management
    # ------------------------------------------------------------------

    def create_user_tx(self, tx: TransactionContext, username: str,
                       org: str, role: str, public_key_hex: str,
                       issuer: str, cert_sig_hex: str) -> None:
        """Onboard (or update) a client user with their certificate."""
        existing = self._sql(tx,
                             f"SELECT username FROM {USER_TABLE} WHERE "
                             f"username = $1", params=(username,))
        if existing.rows:
            self._sql(tx,
                      f"UPDATE {USER_TABLE} SET org = $2, role = $3, "
                      f"public_key = $4, issuer = $5, cert_sig = $6 "
                      f"WHERE username = $1",
                      params=(username, org, role, public_key_hex, issuer,
                              cert_sig_hex))
        else:
            self._sql(tx,
                      f"INSERT INTO {USER_TABLE} (username, org, role, "
                      f"public_key, issuer, cert_sig) "
                      f"VALUES ($1, $2, $3, $4, $5, $6)",
                      params=(username, org, role, public_key_hex, issuer,
                              cert_sig_hex))
        certificate = Certificate(
            name=username, organization=org, role=role,
            public_key_bytes=bytes.fromhex(public_key_hex),
            issuer=issuer,
            signature_bytes=bytes.fromhex(cert_sig_hex))
        tx.on_commit_actions.append(
            lambda: self.certs.register(certificate))

    def delete_user_tx(self, tx: TransactionContext, username: str) -> None:
        result = self._sql(tx,
                           f"DELETE FROM {USER_TABLE} WHERE username = $1",
                           params=(username,))
        if result.rowcount == 0:
            raise ContractError(f"no user {username!r}")
        tx.on_commit_actions.append(lambda: self.certs.remove(username))
