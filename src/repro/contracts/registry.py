"""Registry of deployed smart contracts on one node.

Derived, deterministic state: mutations happen only through committed
system-contract transactions (section 3.7), so every honest node holds the
same registry after the same block height.  Versions matter because "if a
smart contract is updated, any uncommitted transactions that executed on an
older version of the contract are aborted" — the block processor compares
``tx.contract_versions`` against the registry at commit time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.contracts.procedure import Procedure
from repro.errors import ContractNotFound, DeploymentError


class ContractRegistry:
    """name -> deployed :class:`Procedure` (with version counters)."""

    def __init__(self):
        self._procedures: Dict[str, Procedure] = {}
        self._version_counters: Dict[str, int] = {}

    def deploy(self, procedure: Procedure) -> Procedure:
        """Create or replace a contract; replacement bumps the version."""
        next_version = self._version_counters.get(procedure.name, 0) + 1
        procedure.version = next_version
        self._version_counters[procedure.name] = next_version
        self._procedures[procedure.name] = procedure
        return procedure

    def drop(self, name: str) -> None:
        if name not in self._procedures:
            raise ContractNotFound(f"contract {name!r} is not deployed")
        del self._procedures[name]
        # The version counter survives so a redeploy still invalidates
        # transactions that ran the dropped version.

    def get(self, name: str) -> Procedure:
        proc = self._procedures.get(name)
        if proc is None:
            raise ContractNotFound(f"contract {name!r} is not deployed")
        return proc

    def maybe_get(self, name: str) -> Optional[Procedure]:
        return self._procedures.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._procedures

    def names(self) -> List[str]:
        return sorted(self._procedures)

    def current_version(self, name: str) -> Optional[int]:
        proc = self._procedures.get(name)
        return proc.version if proc else None

    def validate_versions(self, used_versions: Dict[str, int]) -> None:
        """Raise :class:`DeploymentError` if any contract a transaction
        executed has since been replaced or dropped."""
        for name, version in used_versions.items():
            current = self.current_version(name)
            if current != version:
                raise DeploymentError(
                    f"contract {name!r} version {version} is stale "
                    f"(current: {current}); transaction must abort "
                    f"(section 3.7)")
