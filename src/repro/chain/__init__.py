"""Chain data model: transactions and blocks."""

from repro.chain.block import Block, GENESIS_PREV_HASH, make_genesis
from repro.chain.transaction import ProcedureCall, Transaction, new_call

__all__ = ["Block", "GENESIS_PREV_HASH", "make_genesis",
           "ProcedureCall", "Transaction", "new_call"]
