"""Blockchain transactions.

Two wire formats exist, matching the two flows:

* **Order-then-execute** (section 3.3): a transaction carries (a) a unique
  identifier, (b) the invoking username, (c) the procedure invocation, and
  (d) a signature over hash(a, b, c).

* **Execute-order-in-parallel** (section 3.4): the client additionally pins
  (c) a block number — the snapshot height the transaction must execute at —
  and the unique identifier is *derived*: hash(username, invocation,
  block number).  Section 3.4.3 explains why: two different transactions
  must never share an identifier, or nodes could diverge on which one wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Tuple

from repro.common.crypto import Signature, sha256_hex
from repro.common.identity import Identity
from repro.common.serialization import canonical_bytes


@dataclass(frozen=True)
class ProcedureCall:
    """Invocation of a deployed PL/SQL procedure (smart contract)."""

    procedure: str
    args: Tuple[Any, ...] = ()

    def to_canonical(self) -> dict:
        return {"procedure": self.procedure, "args": list(self.args)}


@dataclass(frozen=True)
class Transaction:
    """A signed smart-contract invocation.

    ``snapshot_height`` is ``None`` for order-then-execute transactions and
    the client-pinned block height for execute-order-in-parallel ones.
    """

    tx_id: str
    username: str
    call: ProcedureCall
    snapshot_height: Optional[int] = None
    signature_bytes: bytes = b""

    # -- construction ------------------------------------------------------

    @staticmethod
    def _core_payload(username: str, call: ProcedureCall,
                      snapshot_height: Optional[int]) -> bytes:
        return canonical_bytes({
            "username": username,
            "call": call.to_canonical(),
            "snapshot_height": snapshot_height,
        })

    @classmethod
    def derive_tx_id(cls, username: str, call: ProcedureCall,
                     snapshot_height: Optional[int]) -> str:
        """The execute-order-in-parallel identifier: hash(a, b, c)."""
        return sha256_hex(cls._core_payload(username, call, snapshot_height))

    @classmethod
    def create(cls, identity: Identity, call: ProcedureCall,
               snapshot_height: Optional[int] = None,
               tx_id: Optional[str] = None) -> "Transaction":
        """Build and sign a transaction.

        For the parallel flow (``snapshot_height`` set) the identifier is
        always derived from the content; for order-then-execute the caller
        may supply any unique ``tx_id`` (defaults to the derived hash too).
        """
        if snapshot_height is not None or tx_id is None:
            tx_id = cls.derive_tx_id(identity.name, call, snapshot_height)
        unsigned = cls(tx_id=tx_id, username=identity.name, call=call,
                       snapshot_height=snapshot_height)
        signature = identity.sign(unsigned.signing_payload())
        return cls(tx_id=tx_id, username=identity.name, call=call,
                   snapshot_height=snapshot_height,
                   signature_bytes=signature.to_bytes())

    # -- signing -----------------------------------------------------------

    def signing_payload(self) -> bytes:
        """Bytes covered by the client signature: hash payload includes the
        identifier so it cannot be swapped."""
        return canonical_bytes({
            "tx_id": self.tx_id,
            "username": self.username,
            "call": self.call.to_canonical(),
            "snapshot_height": self.snapshot_height,
        })

    @property
    def signature(self) -> Signature:
        return Signature.from_bytes(self.signature_bytes)

    def to_canonical(self) -> dict:
        return {
            "tx_id": self.tx_id,
            "username": self.username,
            "call": self.call.to_canonical(),
            "snapshot_height": self.snapshot_height,
            "sig": self.signature_bytes,
        }

    def size_bytes(self) -> int:
        """Approximate wire size (used by the bandwidth model)."""
        return len(canonical_bytes(self.to_canonical()))


def new_call(procedure: str, *args: Any) -> ProcedureCall:
    """Convenience constructor used throughout examples and tests."""
    return ProcedureCall(procedure=procedure, args=tuple(args))
