"""Blocks.

Section 3.1: a block consists of (a) a sequence number, (b) a set of
transactions, (c) metadata associated with the consensus protocol, (d) the
hash of the previous block, (e) the hash of the current block — i.e.
hash(a, b, c, d) — and (f) orderer signatures on that hash.

Checkpoint write-set hashes from previous blocks ride in the metadata
(sections 3.3.4 / 3.4.4: "state change hashes are added in the next
block").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.crypto import Signature, sha256
from repro.common.identity import CertificateRegistry
from repro.common.merkle import merkle_root
from repro.common.serialization import canonical_bytes
from repro.chain.transaction import Transaction
from repro.errors import BlockValidationError

GENESIS_PREV_HASH = b"\x00" * 32


@dataclass
class Block:
    """An ordered batch of transactions, hash-chained to its predecessor."""

    number: int
    transactions: List[Transaction]
    metadata: Dict = field(default_factory=dict)
    prev_hash: bytes = GENESIS_PREV_HASH
    block_hash: bytes = b""
    # orderer name -> signature bytes over the block hash
    orderer_signatures: Dict[str, bytes] = field(default_factory=dict)

    def compute_hash(self) -> bytes:
        """hash(number, transactions, metadata, prev_hash)."""
        payload = canonical_bytes({
            "number": self.number,
            "tx_root": merkle_root(
                canonical_bytes(tx.to_canonical())
                for tx in self.transactions),
            "tx_ids": [tx.tx_id for tx in self.transactions],
            "metadata": self.metadata,
            "prev_hash": self.prev_hash,
        })
        return sha256(payload)

    def seal(self) -> "Block":
        """Finalize the block hash (called by the ordering service)."""
        self.block_hash = self.compute_hash()
        return self

    def sign(self, orderer_name: str, signature: Signature) -> None:
        self.orderer_signatures[orderer_name] = signature.to_bytes()

    def verify(self, certs: CertificateRegistry,
               expected_prev_hash: Optional[bytes] = None,
               min_signatures: int = 1) -> None:
        """Validate hash integrity, chain linkage and orderer signatures.

        Raises :class:`BlockValidationError` on any failure.
        """
        if self.block_hash != self.compute_hash():
            raise BlockValidationError(
                f"block {self.number}: hash does not match contents")
        if (expected_prev_hash is not None
                and self.prev_hash != expected_prev_hash):
            raise BlockValidationError(
                f"block {self.number}: prev-hash does not chain")
        valid = 0
        for orderer, sig_bytes in self.orderer_signatures.items():
            if orderer not in certs:
                continue
            certs.verify(orderer, self.block_hash,
                         Signature.from_bytes(sig_bytes))
            valid += 1
        if valid < min_signatures:
            raise BlockValidationError(
                f"block {self.number}: {valid} valid orderer signature(s), "
                f"need {min_signatures}")

    def tx_ids(self) -> List[str]:
        return [tx.tx_id for tx in self.transactions]

    def __len__(self) -> int:
        return len(self.transactions)


def make_genesis(metadata: Optional[Dict] = None) -> Block:
    """Block 0: carries network configuration, no transactions."""
    block = Block(number=0, transactions=[],
                  metadata=metadata or {"genesis": True},
                  prev_hash=GENESIS_PREV_HASH)
    return block.seal()
