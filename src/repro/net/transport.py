"""Simulated network transport.

All inter-node communication (transaction forwarding, consensus messages,
block delivery) flows through a :class:`SimNetwork` attached to the
discrete-event scheduler.  Latency models reproduce the paper's two
deployments (section 5): a single-cloud LAN (5 Gbps, sub-millisecond RTT)
and a four-continent multi-cloud WAN (50-60 Mbps, ~100 ms latencies).

Determinism: delivery delays come from a seeded RNG, and messages between
the same pair of nodes are delivered FIFO (a later message never overtakes
an earlier one on the same link).

Fault injection (:class:`FaultPlan`): per-link message drops, duplicates,
delay multipliers and bounded reorder windows, all drawn from the plan's
*own* seeded RNG.  Two properties follow from that split:

* a run with a fault plan installed replays exactly under the same seed
  (chaos schedules are reproducible bug for bug);
* the base latency RNG stream is consumed identically whether or not a
  plan is installed, so a run with no plan — or an all-noop plan — is
  byte-identical to a build without the fault layer at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.events import EventScheduler
from repro.obs.metrics import MetricsScope, private_scope


@dataclass(frozen=True)
class LatencyModel:
    """Point-to-point latency/bandwidth parameters."""

    base_latency: float           # one-way propagation delay (seconds)
    jitter: float                 # +/- uniform jitter fraction of base
    bandwidth_bytes_per_sec: float

    def delay_for(self, size_bytes: int, rng: random.Random) -> float:
        transmission = size_bytes / self.bandwidth_bytes_per_sec
        jitter = self.base_latency * self.jitter * (2 * rng.random() - 1)
        return max(1e-6, self.base_latency + jitter + transmission)


#: Single-cloud deployment: 5 Gbps, ~0.2 ms one-way.
LAN = LatencyModel(base_latency=0.0002, jitter=0.25,
                   bandwidth_bytes_per_sec=5e9 / 8)

#: Multi-cloud deployment: 50-60 Mbps, ~50 ms one-way (section 5: four
#: data centers across four continents; latency rose by ~100 ms round trip).
WAN = LatencyModel(base_latency=0.050, jitter=0.20,
                   bandwidth_bytes_per_sec=55e6 / 8)

#: Zero-delay model for pure-logic tests.
INSTANT = LatencyModel(base_latency=1e-6, jitter=0.0,
                       bandwidth_bytes_per_sec=1e12)

Message = Tuple[str, Any]  # (kind, payload)
Handler = Callable[[str, Message], None]  # (sender, message)


@dataclass(frozen=True)
class LinkFaults:
    """Fault parameters for one directed link (or the plan default)."""

    drop: float = 0.0             # P(message silently lost on the wire)
    duplicate: float = 0.0        # P(a second copy is also delivered)
    delay_multiplier: float = 1.0  # scales the sampled delivery delay
    reorder_window: float = 0.0   # extra uniform delay in [0, w] seconds,
    #                               exempt from the FIFO clamp: messages
    #                               whose FIFO times are within ``w`` of
    #                               each other may swap; nothing can be
    #                               reordered past that bound.

    def is_noop(self) -> bool:
        return (self.drop <= 0.0 and self.duplicate <= 0.0
                and self.delay_multiplier == 1.0
                and self.reorder_window <= 0.0)


class FaultPlan:
    """A seeded, replayable schedule of link faults.

    Every fault decision (drop? duplicate? how much extra delay?) comes
    from the plan's private RNG, in send order — so the same seed over
    the same message sequence injects the exact same faults, and the
    transport's latency RNG stream is never perturbed.
    """

    def __init__(self, seed: int = 0,
                 default: LinkFaults = LinkFaults(),
                 links: Optional[Dict[Tuple[str, str], LinkFaults]] = None):
        self.seed = seed
        self.default = default
        self.links: Dict[Tuple[str, str], LinkFaults] = dict(links or {})
        self._rng = random.Random(seed)

    def set_link(self, src: str, dst: str, faults: LinkFaults) -> None:
        self.links[(src, dst)] = faults

    def faults_for(self, src: str, dst: str) -> LinkFaults:
        return self.links.get((src, dst), self.default)

    # -- decision draws (send order == replay order) --------------------

    def should_drop(self, faults: LinkFaults) -> bool:
        return faults.drop > 0.0 and self._rng.random() < faults.drop

    def should_duplicate(self, faults: LinkFaults) -> bool:
        return faults.duplicate > 0.0 and \
            self._rng.random() < faults.duplicate

    def reorder_delay(self, faults: LinkFaults) -> float:
        if faults.reorder_window <= 0.0:
            return 0.0
        return self._rng.uniform(0.0, faults.reorder_window)


#: Named profiles for ``REPRO_CHAOS_PLAN`` / CI soak runs.  ``low`` keeps
#: every message flowing (no drops) but duplicates, slows and mildly
#: reorders traffic — safe for the full tier-1 suite, whose byte-identity
#: gates must keep holding under it.
CHAOS_PROFILES: Dict[str, LinkFaults] = {
    "low": LinkFaults(duplicate=0.05, delay_multiplier=1.25,
                      reorder_window=0.0005),
    "heavy": LinkFaults(drop=0.15, duplicate=0.10, delay_multiplier=2.0,
                        reorder_window=0.002),
}


def make_chaos_plan(profile: str, seed: int = 0) -> Optional[FaultPlan]:
    """Build a :class:`FaultPlan` from a named profile (or ``off``)."""
    name = (profile or "").strip().lower()
    if name in ("", "off", "none", "0"):
        return None
    if name not in CHAOS_PROFILES:
        raise ValueError(f"unknown chaos profile {profile!r}; "
                         f"choose from {sorted(CHAOS_PROFILES)} or 'off'")
    return FaultPlan(seed=seed, default=CHAOS_PROFILES[name])


class SimNetwork:
    """A message bus between named nodes with per-link latency."""

    def __init__(self, scheduler: EventScheduler,
                 default_latency: LatencyModel = LAN, seed: int = 7,
                 metrics: Optional["MetricsScope"] = None):
        self.scheduler = scheduler
        self.default_latency = default_latency
        self._handlers: Dict[str, Handler] = {}
        self._links: Dict[Tuple[str, str], LatencyModel] = {}
        self._rng = random.Random(seed)
        self._partitioned: set = set()
        self._down: set = set()
        # FIFO guarantee: next earliest delivery time per (src, dst)
        self._link_clock: Dict[Tuple[str, str], float] = {}
        self.fault_plan: Optional[FaultPlan] = None
        # Traffic counters on the unified registry (legacy attribute
        # names below are read-only views).
        self.metrics = metrics if metrics is not None else private_scope()
        self._messages_sent = self.metrics.counter("transport.messages_sent")
        self._bytes_sent = self.metrics.counter("transport.bytes_sent")
        self._messages_dropped = self.metrics.counter(
            "transport.messages_dropped")
        self._messages_duplicated = self.metrics.counter(
            "transport.messages_duplicated")

    @property
    def messages_sent(self) -> int:
        return int(self._messages_sent.value)

    @property
    def bytes_sent(self) -> int:
        return int(self._bytes_sent.value)

    @property
    def messages_dropped(self) -> int:
        return int(self._messages_dropped.value)

    @property
    def messages_duplicated(self) -> int:
        return int(self._messages_duplicated.value)

    # ------------------------------------------------------------------

    def register(self, name: str, handler: Handler) -> None:
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def is_registered(self, name: str) -> bool:
        return name in self._handlers

    def set_link(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override latency for one directed link."""
        self._links[(src, dst)] = model

    # -- fault injection -------------------------------------------------

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Install (or clear, with ``None``) a seeded fault plan."""
        self.fault_plan = plan

    def clear_fault_plan(self) -> None:
        self.fault_plan = None

    def partition(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` (both directions)."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def take_down(self, name: str) -> None:
        """Crash a node: it neither sends nor receives."""
        self._down.add(name)

    def bring_up(self, name: str) -> None:
        self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Message,
             size_bytes: int = 256) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after simulated
        latency.  Silently dropped when either end is down/partitioned
        (like a TCP connection reset), or when the installed fault plan
        loses it on the wire."""
        if src in self._down or dst in self._down:
            return
        if frozenset((src, dst)) in self._partitioned:
            return
        model = self._links.get((src, dst), self.default_latency)
        # Always draw the base delay first so the latency RNG stream is
        # identical with and without a fault plan installed.
        delay = model.delay_for(size_bytes, self._rng)
        plan = self.fault_plan
        faults = plan.faults_for(src, dst) if plan is not None else None
        if faults is not None and faults.is_noop():
            faults = None
        copies = 1
        self._messages_sent.inc()
        self._bytes_sent.inc(size_bytes)
        if faults is not None:
            if plan.should_drop(faults):
                self._messages_dropped.inc()
                return
            delay *= faults.delay_multiplier
            if plan.should_duplicate(faults):
                self._messages_duplicated.inc()
                copies = 2
        # FIFO per link: never deliver before an earlier message.  A
        # reorder window adds extra delay *after* the clamp, so later
        # messages may overtake this one only within the window bound.
        link = (src, dst)
        fifo_at = max(self.scheduler.now + delay,
                      self._link_clock.get(link, 0.0))
        self._link_clock[link] = fifo_at + 1e-9

        def _deliver():
            if dst in self._down:
                return
            handler = self._handlers.get(dst)
            if handler is not None:
                handler(src, message)

        for copy in range(copies):
            deliver_at = fifo_at
            if faults is not None:
                deliver_at += plan.reorder_delay(faults)
                if copy > 0:
                    # The duplicate trails its original by up to one
                    # extra delay (a retransmission echo).
                    deliver_at += delay * (1.0 + plan._rng.random())
            self.scheduler.schedule_at(deliver_at, _deliver)

    def broadcast(self, src: str, message: Message,
                  size_bytes: int = 256,
                  exclude: Optional[set] = None) -> None:
        """Send ``message`` to every registered node except ``src``."""
        exclude = exclude or set()
        for name in sorted(self._handlers):
            if name != src and name not in exclude:
                self.send(src, name, message, size_bytes)
