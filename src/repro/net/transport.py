"""Simulated network transport.

All inter-node communication (transaction forwarding, consensus messages,
block delivery) flows through a :class:`SimNetwork` attached to the
discrete-event scheduler.  Latency models reproduce the paper's two
deployments (section 5): a single-cloud LAN (5 Gbps, sub-millisecond RTT)
and a four-continent multi-cloud WAN (50-60 Mbps, ~100 ms latencies).

Determinism: delivery delays come from a seeded RNG, and messages between
the same pair of nodes are delivered FIFO (a later message never overtakes
an earlier one on the same link).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.events import EventScheduler


@dataclass(frozen=True)
class LatencyModel:
    """Point-to-point latency/bandwidth parameters."""

    base_latency: float           # one-way propagation delay (seconds)
    jitter: float                 # +/- uniform jitter fraction of base
    bandwidth_bytes_per_sec: float

    def delay_for(self, size_bytes: int, rng: random.Random) -> float:
        transmission = size_bytes / self.bandwidth_bytes_per_sec
        jitter = self.base_latency * self.jitter * (2 * rng.random() - 1)
        return max(1e-6, self.base_latency + jitter + transmission)


#: Single-cloud deployment: 5 Gbps, ~0.2 ms one-way.
LAN = LatencyModel(base_latency=0.0002, jitter=0.25,
                   bandwidth_bytes_per_sec=5e9 / 8)

#: Multi-cloud deployment: 50-60 Mbps, ~50 ms one-way (section 5: four
#: data centers across four continents; latency rose by ~100 ms round trip).
WAN = LatencyModel(base_latency=0.050, jitter=0.20,
                   bandwidth_bytes_per_sec=55e6 / 8)

#: Zero-delay model for pure-logic tests.
INSTANT = LatencyModel(base_latency=1e-6, jitter=0.0,
                       bandwidth_bytes_per_sec=1e12)

Message = Tuple[str, Any]  # (kind, payload)
Handler = Callable[[str, Message], None]  # (sender, message)


class SimNetwork:
    """A message bus between named nodes with per-link latency."""

    def __init__(self, scheduler: EventScheduler,
                 default_latency: LatencyModel = LAN, seed: int = 7):
        self.scheduler = scheduler
        self.default_latency = default_latency
        self._handlers: Dict[str, Handler] = {}
        self._links: Dict[Tuple[str, str], LatencyModel] = {}
        self._rng = random.Random(seed)
        self._partitioned: set = set()
        self._down: set = set()
        # FIFO guarantee: next earliest delivery time per (src, dst)
        self._link_clock: Dict[Tuple[str, str], float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------

    def register(self, name: str, handler: Handler) -> None:
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def set_link(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override latency for one directed link."""
        self._links[(src, dst)] = model

    # -- fault injection -------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Drop all traffic between ``a`` and ``b`` (both directions)."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def take_down(self, name: str) -> None:
        """Crash a node: it neither sends nor receives."""
        self._down.add(name)

    def bring_up(self, name: str) -> None:
        self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Message,
             size_bytes: int = 256) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after simulated
        latency.  Silently dropped when either end is down/partitioned
        (like a TCP connection reset)."""
        if src in self._down or dst in self._down:
            return
        if frozenset((src, dst)) in self._partitioned:
            return
        model = self._links.get((src, dst), self.default_latency)
        delay = model.delay_for(size_bytes, self._rng)
        # FIFO per link: never deliver before an earlier message.
        link = (src, dst)
        deliver_at = max(self.scheduler.now + delay,
                         self._link_clock.get(link, 0.0))
        self._link_clock[link] = deliver_at + 1e-9
        self.messages_sent += 1
        self.bytes_sent += size_bytes

        def _deliver():
            if dst in self._down:
                return
            handler = self._handlers.get(dst)
            if handler is not None:
                handler(src, message)

        self.scheduler.schedule_at(deliver_at, _deliver)

    def broadcast(self, src: str, message: Message,
                  size_bytes: int = 256,
                  exclude: Optional[set] = None) -> None:
        """Send ``message`` to every registered node except ``src``."""
        exclude = exclude or set()
        for name in sorted(self._handlers):
            if name != src and name not in exclude:
                self.send(src, name, message, size_bytes)
