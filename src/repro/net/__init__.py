"""Simulated network substrate."""

from repro.net.transport import INSTANT, LAN, LatencyModel, SimNetwork, WAN

__all__ = ["INSTANT", "LAN", "LatencyModel", "SimNetwork", "WAN"]
