"""Experiment harness: regenerates every table and figure of section 5.

Each ``run_*`` function returns plain dicts/lists (and can render an ASCII
table) so the pytest-benchmark wrappers in ``benchmarks/`` and
EXPERIMENTS.md generation share one code path.

Two kinds of experiments coexist:

* *model experiments* (Figures 5-8, Tables 4-5) drive the calibrated
  pipeline simulator — the paper's absolute numbers are a property of its
  32-vCPU testbed, the shape is a property of the protocol;
* *functional experiments* drive the real engine end-to-end (multi-org
  network, real SSI, real consensus) to measure the Python engine's own
  commit rates and validate that the same orderings hold.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.contracts_appendix_a import (
    ALL_CONTRACTS,
    SCHEMA_SQL,
    SEED_ACCOUNTS_CONTRACT,
    seed_calls,
    workload_calls,
)
from repro.bench.perfmodel import (
    FLOW_EO,
    FLOW_OE,
    PipelineSimulator,
    SimConfig,
    peak_throughput,
    sweep_arrival_rates,
)
from repro.bench.profiles import (
    BFT_ORDERER_MODEL,
    COMPLEX_GROUP,
    COMPLEX_JOIN,
    KAFKA_ORDERER_MODEL,
    LAN_DEPLOYMENT,
    SIMPLE,
    WAN_DEPLOYMENT,
)


#: Counter namespaces embedded into BENCH_*.json baselines.  These are
#: workload-determined (how many flushes, cache misses, sync round
#: trips a fixed workload performs), unlike wall-clock numbers, so a
#: perf gate can diff them across commits to flag e.g. an unexpected
#: plan-cache miss spike that a ratio-based time gate would absorb.
BENCH_COUNTER_PREFIXES = ("plancache.", "wal.", "sync.", "transport.",
                          "scheduler.", "columnstore.", "consensus.")


def registry_counter_snapshot(metrics,
                              prefixes: Sequence[str] =
                              BENCH_COUNTER_PREFIXES) -> Dict[str, int]:
    """Compact counter view of a :class:`MetricsRegistry` (or scope) for
    embedding in a benchmark baseline: totals aggregated across label
    scopes (all nodes of a network summed), filtered to the engine
    subsystems listed in :data:`BENCH_COUNTER_PREFIXES`."""
    totals: Dict[str, int] = {}
    for key, value in metrics.snapshot()["counters"].items():
        name = key.split("{", 1)[0]
        if name.startswith(tuple(prefixes)):
            totals[name] = totals.get(name, 0) + int(value)
    return dict(sorted(totals.items()))


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Minimal fixed-width ASCII table."""
    cols = [[str(h)] + [str(r[i]) for r in rows]
            for i, h in enumerate(headers)]
    widths = [max(len(v) for v in col) for col in cols]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 5: throughput & latency vs arrival rate (simple contract)
# ---------------------------------------------------------------------------

def run_fig5(flow: str, rates: Optional[List[float]] = None,
             block_sizes: Sequence[int] = (10, 100, 500),
             duration: float = 15.0) -> Dict:
    if rates is None:
        rates = ([1200, 1500, 1800, 2100] if flow == FLOW_OE
                 else [1800, 2100, 2400, 2700])
    series = sweep_arrival_rates(flow, SIMPLE, list(rates),
                                 list(block_sizes), duration=duration)
    peak = max(throughput for per_bs in series.values()
               for _, throughput, _ in per_bs)
    return {"flow": flow, "series": series, "peak_throughput": peak}


def fig5_table(result: Dict) -> str:
    rows = []
    for bs, points in sorted(result["series"].items()):
        for rate, throughput, latency in points:
            rows.append([bs, int(rate), round(throughput, 1),
                         round(latency * 1e3, 1)])
    return format_table(
        ["block_size", "arrival_tps", "throughput_tps", "latency_ms"], rows)


# ---------------------------------------------------------------------------
# Tables 4 and 5: micro metrics at fixed arrival rates
# ---------------------------------------------------------------------------

def run_micro_metrics(flow: str, arrival_rate: float,
                      block_sizes: Sequence[int] = (10, 100, 500),
                      duration: float = 10.0) -> List[Dict]:
    rows = []
    for bs in block_sizes:
        sim = PipelineSimulator(SimConfig(
            flow=flow, profile=SIMPLE, arrival_rate=arrival_rate,
            block_size=bs, duration=duration))
        result = sim.run()
        row = {"bs": bs}
        row.update(result.row())
        row["throughput"] = round(result.throughput, 1)
        rows.append(row)
    return rows


def micro_metrics_table(rows: List[Dict], include_mt: bool) -> str:
    headers = ["bs", "brr", "bpr", "bpt", "bet", "bct", "tet"]
    if include_mt:
        headers.append("mt")
    headers.append("su")
    return format_table(headers,
                        [[row[h] for h in headers] for row in rows])


# ---------------------------------------------------------------------------
# Figures 6 and 7: contract complexity
# ---------------------------------------------------------------------------

def run_complexity(profile_name: str,
                   block_sizes: Sequence[int] = (10, 50, 100)) -> Dict:
    profile = {"complex-join": COMPLEX_JOIN,
               "complex-group": COMPLEX_GROUP}[profile_name]
    out: Dict = {"profile": profile_name, "flows": {}}
    for flow in (FLOW_OE, FLOW_EO):
        per_bs = []
        for bs in block_sizes:
            sim = PipelineSimulator(SimConfig(
                flow=flow, profile=profile,
                arrival_rate=10_000, block_size=bs, duration=5.0))
            capacity = sim.capacity()
            result = PipelineSimulator(SimConfig(
                flow=flow, profile=profile, arrival_rate=capacity * 1.2,
                block_size=bs, duration=8.0)).run()
            per_bs.append({
                "bs": bs,
                "peak_throughput": round(result.throughput, 1),
                "bpt_ms": round(result.avg_block_processing_time * 1e3, 2),
                "bet_ms": round(result.avg_block_execution_time * 1e3, 2),
                "tet_ms": round(result.avg_tx_execution_time * 1e3, 2),
            })
        out["flows"][flow] = per_bs
    return out


# ---------------------------------------------------------------------------
# Section 5.1 Ethereum-style serial baseline
# ---------------------------------------------------------------------------

def run_serial_baseline(block_size: int = 100) -> Dict:
    serial = peak_throughput(FLOW_OE, SIMPLE, block_size,
                             serial_execution=True)
    concurrent = peak_throughput(FLOW_OE, SIMPLE, block_size)
    return {"serial_peak": round(serial, 1),
            "concurrent_peak": round(concurrent, 1),
            "ratio": round(serial / concurrent, 3)}


# ---------------------------------------------------------------------------
# Figure 8(a): multi-cloud deployment
# ---------------------------------------------------------------------------

def run_fig8a(block_sizes: Sequence[int] = (10, 50, 100)) -> Dict:
    out: Dict = {"rows": []}
    for flow in (FLOW_OE, FLOW_EO):
        for bs in block_sizes:
            lan_peak = peak_throughput(flow, COMPLEX_JOIN, bs,
                                       deployment=LAN_DEPLOYMENT)
            wan_peak = peak_throughput(flow, COMPLEX_JOIN, bs,
                                       deployment=WAN_DEPLOYMENT)
            # Latency comparison at a sub-saturation rate.
            rate = lan_peak * 0.5
            lan_lat = PipelineSimulator(SimConfig(
                flow=flow, profile=COMPLEX_JOIN, arrival_rate=rate,
                block_size=bs, duration=10.0)).run().avg_latency
            wan_lat = PipelineSimulator(SimConfig(
                flow=flow, profile=COMPLEX_JOIN, arrival_rate=rate,
                block_size=bs, duration=10.0,
                deployment=WAN_DEPLOYMENT)).run().avg_latency
            out["rows"].append({
                "flow": flow, "bs": bs,
                "lan_peak": round(lan_peak, 1),
                "wan_peak": round(wan_peak, 1),
                "peak_drop_pct": round(
                    100.0 * (1 - wan_peak / lan_peak), 2),
                "latency_increase_ms": round(
                    (wan_lat - lan_lat) * 1e3, 1),
            })
    return out


# ---------------------------------------------------------------------------
# Figure 8(b): ordering-service throughput vs orderer count
# ---------------------------------------------------------------------------

def run_fig8b(orderer_counts: Sequence[int] = (4, 8, 12, 16, 20, 24, 28, 32),
              offered_tps: float = 3000.0) -> Dict:
    rows = []
    for n in orderer_counts:
        kafka = min(offered_tps, KAFKA_ORDERER_MODEL.capacity(n))
        bft = min(offered_tps, BFT_ORDERER_MODEL.capacity(n))
        rows.append({"orderers": n,
                     "kafka_tps": round(kafka, 1),
                     "bft_tps": round(bft, 1)})
    return {"offered_tps": offered_tps, "rows": rows}


# ---------------------------------------------------------------------------
# Functional (real-engine) experiments
# ---------------------------------------------------------------------------

def build_functional_network(flow: str, organizations: Sequence[str] =
                             ("org1", "org2", "org3"),
                             consensus: str = "kafka",
                             block_size: int = 20,
                             block_timeout: float = 0.2,
                             seed_data: bool = True):
    """A real multi-org network loaded with the Appendix A schema."""
    from repro.core.network import BlockchainNetwork

    net = BlockchainNetwork(
        organizations=list(organizations), flow=flow, consensus=consensus,
        block_size=block_size, block_timeout=block_timeout,
        schema_sql=SCHEMA_SQL,
        contracts=ALL_CONTRACTS + [SEED_ACCOUNTS_CONTRACT])
    clients = [net.register_client(f"bench-client-{i}", org)
               for i, org in enumerate(organizations)]
    if seed_data:
        for i, (procedure, args) in enumerate(
                seed_calls(list(organizations))):
            clients[i % len(clients)].invoke(procedure, *args)
        net.settle(timeout=60.0)
    return net, clients


def run_functional_workload(flow: str, kind: str, count: int = 60,
                            consensus: str = "kafka") -> Dict:
    """Push ``count`` real transactions through the engine; returns
    wall-clock commit rate, abort statistics, and the SQL engine's own
    per-statement planning/execution timings — including plan-cache
    hit/miss counts and expression-compilation cost, so fig6/fig7-style
    runs report the statement fast path's effect directly."""
    from repro.sql.planner import QUERY_TIMINGS

    net, clients = build_functional_network(flow, consensus=consensus)
    orgs = [c.identity.organization for c in clients]
    calls = workload_calls(kind, count, orgs)
    QUERY_TIMINGS.reset()  # measure the workload, not the seeding
    started = time.perf_counter()
    tx_ids = []
    for i, (procedure, args) in enumerate(calls):
        tx_ids.append(clients[i % len(clients)].invoke(procedure, *args))
    net.settle(timeout=120.0)
    elapsed = time.perf_counter() - started
    committed = aborted = 0
    node = net.primary_node
    for tx_id in tx_ids:
        entry = node.ledger.entry(tx_id)
        if entry and entry["status"] == "committed":
            committed += 1
        else:
            aborted += 1
    net.assert_consistent()
    exec_samples = [t for metrics in node.processor.metrics
                    for t in metrics.tx_execution_times]
    avg_exec_ms = (1e3 * sum(exec_samples) / len(exec_samples)
                   if exec_samples else 0.0)
    sql_timings = QUERY_TIMINGS.snapshot()
    sync_totals: Dict[str, float] = {}
    for peer in net.nodes:
        for key, value in peer.sync.stats().items():
            sync_totals[key] = sync_totals.get(key, 0) + value
    return {
        "flow": flow, "kind": kind, "count": count,
        "committed": committed, "aborted": aborted,
        "wall_seconds": round(elapsed, 3),
        "engine_tps": round(committed / elapsed, 1) if elapsed else 0.0,
        "avg_tx_exec_ms": round(avg_exec_ms, 3),
        "blocks": node.blockstore.height,
        "sql_statements": sql_timings["statements"],
        "sql_plan_ms_avg": sql_timings["plan_ms_avg"],
        "sql_exec_ms_avg": sql_timings["exec_ms_avg"],
        "sql_plan_ms_total": sql_timings["plan_ms_total"],
        "sql_exec_ms_total": sql_timings["exec_ms_total"],
        "sql_plan_cache_hits": sql_timings["plan_cache_hits"],
        "sql_plan_cache_misses": sql_timings["plan_cache_misses"],
        "sql_compile_ms_total": sql_timings["compile_ms_total"],
        "sql_compiled_exprs": sql_timings["compiled_exprs"],
        # Anti-entropy sync activity summed across the replica set: on a
        # healthy run requests/retries stay ~0 while announces tick — a
        # nonzero blocks_requested here means the workload outran
        # delivery somewhere and the sync layer healed it.
        "sync_blocks_requested": int(sync_totals.get(
            "blocks_requested", 0)),
        "sync_blocks_served": int(sync_totals.get("blocks_served", 0)),
        "sync_retries": int(sync_totals.get("retries", 0)),
        "sync_backoff_ms_total": round(sync_totals.get(
            "backoff_ms_total", 0.0), 3),
        "sync_announces_sent": int(sync_totals.get("announces_sent", 0)),
        # Full counter snapshot of the network's registry, for embedding
        # next to the timings in BENCH_*.json.
        "registry": registry_counter_snapshot(net.metrics),
    }
