"""Benchmark substrate: calibrated performance model, Appendix A
workloads, and the experiment harness for every table and figure."""

from repro.bench.perfmodel import (
    FLOW_EO,
    FLOW_OE,
    PipelineSimulator,
    SimConfig,
    SimResult,
    peak_throughput,
    sweep_arrival_rates,
)
from repro.bench.profiles import (
    BFT_ORDERER_MODEL,
    COMPLEX_GROUP,
    COMPLEX_JOIN,
    KAFKA_ORDERER_MODEL,
    LAN_DEPLOYMENT,
    PROFILES,
    SIMPLE,
    WAN_DEPLOYMENT,
)

__all__ = [
    "FLOW_EO", "FLOW_OE", "PipelineSimulator", "SimConfig", "SimResult",
    "peak_throughput", "sweep_arrival_rates", "BFT_ORDERER_MODEL",
    "COMPLEX_GROUP", "COMPLEX_JOIN", "KAFKA_ORDERER_MODEL",
    "LAN_DEPLOYMENT", "PROFILES", "SIMPLE", "WAN_DEPLOYMENT",
]
