"""The paper's evaluation workloads (Appendix A) for the *real* engine.

Three smart contracts over an order-processing schema:

* ``simple_insert`` (Figure 9): single-row inserts;
* ``complex_join`` (Figure 10): joins two tables, aggregates, writes the
  result to a third table;
* ``complex_group`` (Figure 11): aggregates over subgroups of a group,
  uses ORDER BY + LIMIT to write the max aggregate into a table.

All predicates are index-backed so the contracts run under the
execute-order-in-parallel flow's strict rules.
"""

from __future__ import annotations

import random
from typing import List, Tuple

SCHEMA_SQL = """
CREATE TABLE accounts (
    acc_id INT PRIMARY KEY,
    org TEXT NOT NULL,
    balance FLOAT NOT NULL
);
CREATE INDEX accounts_org_idx ON accounts(org);
CREATE TABLE invoices (
    invoice_id INT PRIMARY KEY,
    acc_id INT NOT NULL,
    org TEXT NOT NULL,
    amount FLOAT NOT NULL,
    status TEXT NOT NULL
);
CREATE INDEX invoices_acc_idx ON invoices(acc_id);
CREATE INDEX invoices_org_idx ON invoices(org);
CREATE TABLE summaries (
    summary_id TEXT PRIMARY KEY,
    org TEXT NOT NULL,
    total FLOAT NOT NULL,
    cnt INT NOT NULL
);
CREATE TABLE groupmax (
    gm_id TEXT PRIMARY KEY,
    org TEXT NOT NULL,
    max_total FLOAT NOT NULL
);
"""

SIMPLE_CONTRACT = """
CREATE FUNCTION simple_insert(inv_id INT, account INT, org_name TEXT,
                              amount FLOAT) RETURNS VOID AS $$
BEGIN
    INSERT INTO invoices (invoice_id, acc_id, org, amount, status)
    VALUES (inv_id, account, org_name, amount, 'new');
END $$ LANGUAGE plpgsql
"""

COMPLEX_JOIN_CONTRACT = """
CREATE FUNCTION complex_join(sid TEXT, org_name TEXT) RETURNS VOID AS $$
DECLARE
    total FLOAT;
    cnt INT;
BEGIN
    SELECT sum(i.amount), count(*) INTO total, cnt
    FROM accounts a JOIN invoices i ON i.acc_id = a.acc_id
    WHERE a.org = org_name;
    INSERT INTO summaries (summary_id, org, total, cnt)
    VALUES (sid, org_name, coalesce(total, 0.0), coalesce(cnt, 0));
END $$ LANGUAGE plpgsql
"""

COMPLEX_GROUP_CONTRACT = """
CREATE FUNCTION complex_group(gid TEXT, org_name TEXT) RETURNS VOID AS $$
DECLARE
    m FLOAT;
BEGIN
    SELECT sum(amount) INTO m
    FROM invoices
    WHERE org = org_name
    GROUP BY acc_id
    ORDER BY sum(amount) DESC, acc_id ASC
    LIMIT 1;
    INSERT INTO groupmax (gm_id, org, max_total)
    VALUES (gid, org_name, coalesce(m, 0.0));
END $$ LANGUAGE plpgsql
"""

ALL_CONTRACTS = [SIMPLE_CONTRACT, COMPLEX_JOIN_CONTRACT,
                 COMPLEX_GROUP_CONTRACT]

SEED_ACCOUNTS_CONTRACT = """
CREATE FUNCTION open_account(account INT, org_name TEXT, bal FLOAT)
RETURNS VOID AS $$
BEGIN
    INSERT INTO accounts (acc_id, org, balance) VALUES
    (account, org_name, bal);
END $$ LANGUAGE plpgsql
"""


def seed_calls(orgs: List[str], accounts_per_org: int = 4,
               invoices_per_account: int = 3,
               seed: int = 13) -> List[Tuple[str, tuple]]:
    """Deterministic dataset bootstrap: (procedure, args) invocations."""
    rng = random.Random(seed)
    calls: List[Tuple[str, tuple]] = []
    acc_id = 1
    inv_id = 1
    for org in orgs:
        for _ in range(accounts_per_org):
            calls.append(("open_account",
                          (acc_id, org, round(rng.uniform(100, 1000), 2))))
            for _ in range(invoices_per_account):
                calls.append(("simple_insert",
                              (inv_id, acc_id, org,
                               round(rng.uniform(10, 500), 2))))
                inv_id += 1
            acc_id += 1
    return calls


def workload_calls(kind: str, count: int, orgs: List[str],
                   start_id: int = 100_000,
                   seed: int = 29) -> List[Tuple[str, tuple]]:
    """A stream of ``count`` invocations of one Appendix A contract."""
    rng = random.Random(seed)
    calls: List[Tuple[str, tuple]] = []
    for i in range(count):
        org = orgs[i % len(orgs)]
        if kind == "simple":
            calls.append(("simple_insert",
                          (start_id + i, 1 + (i % (4 * len(orgs))), org,
                           round(rng.uniform(10, 500), 2))))
        elif kind == "complex-join":
            calls.append(("complex_join", (f"sum-{seed}-{i}", org)))
        elif kind == "complex-group":
            calls.append(("complex_group", (f"gm-{seed}-{i}", org)))
        else:
            raise ValueError(f"unknown workload kind {kind!r}")
    return calls
