"""Discrete-event performance simulator for the section 5 experiments.

Reproduces the paper's measurement pipeline at block granularity:

* clients generate transactions at a fixed arrival rate;
* the ordering service cuts blocks by size or the 1 s timeout and ships
  them after a consensus + transfer delay;
* each node's block processor is a serial server whose per-block service
  time follows the flow-specific cost model (execution phase + serial
  commit phase), using the calibrated :mod:`repro.bench.profiles`;
* per-transaction latency = wait-for-block-cut + ordering + queueing +
  in-block commit position, exactly the components the paper discusses
  when explaining why latency rises with block size below saturation and
  falls above it.

Outputs throughput, average latency and all seven micro metrics of
section 5 (brr, bpr, bpt, bet, tet, bct, mt) plus system utilization su.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.events import EventScheduler
from repro.bench.profiles import (
    ContractProfile,
    DeploymentProfile,
    LAN_DEPLOYMENT,
    TX_WIRE_BYTES,
)

FLOW_OE = "order-execute"
FLOW_EO = "execute-order"


@dataclass
class SimConfig:
    """One simulated run."""

    flow: str
    profile: ContractProfile
    arrival_rate: float            # offered load, tx/s
    block_size: int
    block_timeout: float = 1.0
    deployment: DeploymentProfile = LAN_DEPLOYMENT
    duration: float = 30.0         # simulated seconds of arrivals
    drain: float = 60.0            # extra time to flush queues
    serial_execution: bool = False  # Ethereum-style baseline (section 5.1)
    max_backends: int = 2600       # PostgreSQL max_connections


@dataclass
class SimResult:
    """Aggregated measurements (paper metric names in parentheses)."""

    throughput: float = 0.0        # committed tx/s during the run
    avg_latency: float = 0.0       # seconds, submission -> commit
    p95_latency: float = 0.0
    block_receive_rate: float = 0.0     # brr
    block_process_rate: float = 0.0     # bpr
    avg_block_processing_time: float = 0.0  # bpt (seconds)
    avg_block_execution_time: float = 0.0   # bet
    avg_block_commit_time: float = 0.0      # bct
    avg_tx_execution_time: float = 0.0      # tet
    missing_tx_rate: float = 0.0            # mt (EO only)
    system_utilization: float = 0.0         # su = bpr * bpt
    committed: int = 0
    blocks: int = 0

    def row(self) -> dict:
        """Micro-metric row in the units of Tables 4/5 (ms, per-second)."""
        return {
            "brr": round(self.block_receive_rate, 2),
            "bpr": round(self.block_process_rate, 2),
            "bpt": round(self.avg_block_processing_time * 1e3, 2),
            "bet": round(self.avg_block_execution_time * 1e3, 2),
            "bct": round(self.avg_block_commit_time * 1e3, 2),
            "tet": round(self.avg_tx_execution_time * 1e3, 2),
            "mt": round(self.missing_tx_rate, 1),
            "su": round(self.system_utilization * 100.0, 1),
        }


class PipelineSimulator:
    """Block-pipeline queueing simulator for one node."""

    def __init__(self, config: SimConfig):
        self.config = config

    # -- cost model ---------------------------------------------------------

    def _execution_time(self, n: int) -> float:
        """Execution-phase duration for a block of ``n`` transactions."""
        cfg = self.config
        profile = cfg.profile
        if cfg.serial_execution:
            # Ethereum-style: execute one transaction at a time, paying the
            # backend start, the execution itself and per-tx commit
            # signalling serially (section 5.1: ~40% of the SSI pipeline).
            return n * (profile.tet + profile.oe_start_per_tx + 0.0005)
        if cfg.flow == FLOW_OE:
            # Start n backends, then wait for the concurrent executions
            # (tet overlaps across `parallelism` cores).
            waves = max(1.0, n / profile.parallelism)
            return n * profile.oe_start_per_tx + waves * profile.tet
        # EO: execution largely happened during ordering; only the residual
        # (late/missing transactions, synchronization) remains.
        return n * profile.eo_residual_per_tx

    def _commit_time(self, n: int) -> float:
        profile = self.config.profile
        per_tx = (profile.oe_commit_per_tx
                  if self.config.flow == FLOW_OE or
                  self.config.serial_execution
                  else profile.eo_commit_per_tx)
        return n * per_tx

    def block_processing_time(self, n: int) -> float:
        """bpt for a block of ``n`` transactions."""
        return self._execution_time(n) + self._commit_time(n)

    def capacity(self) -> float:
        """Sustainable committed tx/s at the configured block size."""
        n = self.config.block_size
        return n / self.block_processing_time(n)

    # -- simulation -----------------------------------------------------------

    def run(self) -> SimResult:
        cfg = self.config
        scheduler = EventScheduler()
        deploy = cfg.deployment

        pending: List[float] = []       # submit times waiting at orderer
        cut_deadline: Optional[float] = None
        blocks_received = 0
        blocks_processed = 0
        processor_free_at = 0.0
        busy_time = 0.0
        latencies: List[float] = []
        bpt_samples: List[float] = []
        bet_samples: List[float] = []
        bct_samples: List[float] = []
        missing = 0
        committed = 0
        # EO missing-transaction model: under load, backend scheduling
        # contention delays execution starts, so some transactions are
        # still running (or not yet started) when their block arrives —
        # the committer must execute them (section 3.4.3).  Calibrated to
        # Table 5: at ~85% of capacity roughly a fifth of transactions are
        # late; the fraction decays quadratically with load.
        eo_capacity = (self.capacity()
                       if cfg.flow == FLOW_EO and not cfg.serial_execution
                       else None)

        state = {"cut_deadline_event": None}

        def cut_block(reason: str) -> None:
            nonlocal blocks_received
            if not pending:
                return
            batch = pending[:cfg.block_size]
            del pending[:len(batch)]
            if state["cut_deadline_event"] is not None:
                scheduler.cancel(state["cut_deadline_event"])
                state["cut_deadline_event"] = None
            if pending:
                arm_timeout()
            block_bytes = len(batch) * TX_WIRE_BYTES + 512
            delay = (deploy.consensus_delay + deploy.one_way_latency
                     + deploy.block_transfer_time(block_bytes))
            scheduler.schedule(delay, lambda b=list(batch): deliver(b))
            blocks_received += 1

        def arm_timeout() -> None:
            if state["cut_deadline_event"] is not None:
                return

            def _expire():
                state["cut_deadline_event"] = None
                cut_block("timeout")

            state["cut_deadline_event"] = scheduler.schedule(
                cfg.block_timeout, _expire)

        def deliver(batch: List[float]) -> None:
            nonlocal processor_free_at, busy_time, blocks_processed
            nonlocal missing, committed
            now = scheduler.now
            n = len(batch)
            exec_time = self._execution_time(n)
            if eo_capacity is not None:
                load = min(1.2, cfg.arrival_rate / eo_capacity)
                late = int(n * 0.3 * load * load)
                missing += late
            commit_time = self._commit_time(n)
            service = exec_time + commit_time
            start = max(now, processor_free_at)
            finish = start + service
            processor_free_at = finish
            busy_time += service
            blocks_processed += 1
            bpt_samples.append(service)
            bet_samples.append(exec_time)
            bct_samples.append(commit_time)
            committed += n
            for position, submit_time in enumerate(batch):
                commit_at = (start + exec_time
                             + commit_time * (position + 1) / n)
                latencies.append(commit_at - submit_time
                                 + deploy.one_way_latency)

        def _arrival(t: float) -> None:
            pending.append(t)
            if len(pending) >= cfg.block_size:
                cut_block("size")
            else:
                arm_timeout()

        # Schedule deterministic arrivals.
        interval = 1.0 / cfg.arrival_rate
        count = int(cfg.arrival_rate * cfg.duration)
        for i in range(count):
            when = (i + 1) * interval
            scheduler.schedule_at(
                when + deploy.one_way_latency,
                lambda w=when: _arrival(w))

        scheduler.run(until=cfg.duration + cfg.drain)
        # Flush whatever is still pending at the orderer.
        while pending:
            cut_block("flush")
            scheduler.run(until=scheduler.now + cfg.drain)

        elapsed = max(cfg.duration, 1e-9)
        total_busy_window = max(processor_free_at, cfg.duration)
        result = SimResult(
            throughput=committed / max(total_busy_window, elapsed),
            avg_latency=(sum(latencies) / len(latencies)
                         if latencies else 0.0),
            p95_latency=(sorted(latencies)[int(0.95 * len(latencies))]
                         if latencies else 0.0),
            block_receive_rate=blocks_received / elapsed,
            block_process_rate=blocks_processed / elapsed,
            avg_block_processing_time=(sum(bpt_samples) / len(bpt_samples)
                                       if bpt_samples else 0.0),
            avg_block_execution_time=(sum(bet_samples) / len(bet_samples)
                                      if bet_samples else 0.0),
            avg_block_commit_time=(sum(bct_samples) / len(bct_samples)
                                   if bct_samples else 0.0),
            avg_tx_execution_time=cfg.profile.tet,
            missing_tx_rate=missing / elapsed,
            committed=committed,
            blocks=blocks_processed,
        )
        result.system_utilization = min(
            1.0, result.block_process_rate *
            result.avg_block_processing_time)
        return result

    def _forward_delay(self) -> float:
        return self.config.deployment.one_way_latency * 2


def sweep_arrival_rates(flow: str, profile: ContractProfile,
                        rates: List[float], block_sizes: List[int],
                        deployment: DeploymentProfile = LAN_DEPLOYMENT,
                        duration: float = 20.0,
                        serial_execution: bool = False) -> dict:
    """Figure 5-style sweep: {block_size: [(rate, throughput, latency)]}"""
    out = {}
    for bs in block_sizes:
        series = []
        for rate in rates:
            sim = PipelineSimulator(SimConfig(
                flow=flow, profile=profile, arrival_rate=rate,
                block_size=bs, deployment=deployment, duration=duration,
                serial_execution=serial_execution))
            result = sim.run()
            series.append((rate, result.throughput, result.avg_latency))
        out[bs] = series
    return out


def peak_throughput(flow: str, profile: ContractProfile, block_size: int,
                    deployment: DeploymentProfile = LAN_DEPLOYMENT,
                    serial_execution: bool = False) -> float:
    """Peak committed throughput: offered load well above capacity."""
    sim = PipelineSimulator(SimConfig(
        flow=flow, profile=profile, arrival_rate=10_000.0,
        block_size=block_size, deployment=deployment, duration=10.0,
        serial_execution=serial_execution))
    capacity = sim.capacity()
    probe = PipelineSimulator(SimConfig(
        flow=flow, profile=profile, arrival_rate=capacity * 1.2,
        block_size=block_size, deployment=deployment, duration=10.0,
        serial_execution=serial_execution))
    return probe.run().throughput
