"""Calibrated performance profiles.

The paper's testbed (32-vCPU Xeon VMs, PostgreSQL 10) is simulated: the
shape of every curve comes from the pipeline structure, while the absolute
service times below are calibrated once against the micro-metric tables
(Tables 4 and 5) and section 5.2's contract-complexity statements:

* simple contract: tet ≈ 0.2 ms (Table 4);
* complex-join contract: tet ≈ 160 × simple (section 5.2), peak OE
  throughput ≈ 400 tps at block size 100 (Figure 6a);
* complex-group contract: ≈ 1.75 × (OE) / 1.6 × (EO) the join contract's
  peak throughput (section 5.2, Figure 7);
* order-then-execute, simple, bs=100: bet ≈ 47 ms, bct ≈ 8.3 ms
  (Table 4) — i.e. ≈ 0.45 ms to *start* a backend per transaction and
  ≈ 0.083 ms per serial commit;
* execute-order-in-parallel, simple, bs=100: bet ≈ 18.6 ms,
  bct ≈ 16.7 ms (Table 5) — execution mostly overlaps ordering, while the
  serial commit is costlier (more active backends contending).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ContractProfile:
    """Per-contract service-time coefficients (seconds)."""

    name: str
    tet: float                 # single transaction execution time
    oe_start_per_tx: float     # OE: backend start/dispatch per tx
    oe_commit_per_tx: float    # OE: serial commit validation per tx
    eo_residual_per_tx: float  # EO: leftover execution at block arrival
    eo_commit_per_tx: float    # EO: serial commit validation per tx
    parallelism: int = 32      # vCPUs: concurrent execution slots


#: Appendix A Figure 9 — single inserts.
SIMPLE = ContractProfile(
    name="simple",
    tet=0.0002,
    oe_start_per_tx=0.00045,
    oe_commit_per_tx=0.000083,
    eo_residual_per_tx=0.000186,
    eo_commit_per_tx=0.000167,
)

#: Appendix A Figure 10 — joins + aggregates into a third table.
#: tet is 160x the simple contract (section 5.2).
COMPLEX_JOIN = ContractProfile(
    name="complex-join",
    tet=0.032,
    oe_start_per_tx=0.00045,
    oe_commit_per_tx=0.00105,     # large read sets -> costly SSI checks
    eo_residual_per_tx=0.00030,
    eo_commit_per_tx=0.00085,
)

#: Appendix A Figure 11 — group-by/order-by/limit aggregate.  Cheaper than
#: the join: OE peak is 1.75x, EO peak 1.6x the join contract's.
COMPLEX_GROUP = ContractProfile(
    name="complex-group",
    tet=0.018,
    oe_start_per_tx=0.00045,
    oe_commit_per_tx=0.00042,
    eo_residual_per_tx=0.00025,
    eo_commit_per_tx=0.00047,
)

PROFILES = {p.name: p for p in (SIMPLE, COMPLEX_JOIN, COMPLEX_GROUP)}


@dataclass(frozen=True)
class DeploymentProfile:
    """Network deployment parameters (section 5: LAN vs multi-cloud WAN)."""

    name: str
    one_way_latency: float          # client/peer/orderer hop (seconds)
    bandwidth_bytes_per_sec: float
    consensus_delay: float          # intra-ordering-service round

    def block_transfer_time(self, block_bytes: int) -> float:
        return block_bytes / self.bandwidth_bytes_per_sec


#: Single cloud data center: 5 Gbps, sub-ms RTT.
LAN_DEPLOYMENT = DeploymentProfile(
    name="lan", one_way_latency=0.0002,
    bandwidth_bytes_per_sec=5e9 / 8, consensus_delay=0.002)

#: Four data centers across four continents: 50-60 Mbps links; calibrated
#: so end-to-end latency rises by ~100 ms over the LAN (section 5.3).
WAN_DEPLOYMENT = DeploymentProfile(
    name="wan", one_way_latency=0.030,
    bandwidth_bytes_per_sec=55e6 / 8, consensus_delay=0.034)

#: Paper section 5.3: each transaction is ~196 bytes on the wire.
TX_WIRE_BYTES = 196


@dataclass(frozen=True)
class OrdererThroughputModel:
    """Figure 8(b): ordering-service capacity vs orderer count.

    Modelled as per-transaction CPU+network cost ``a + b * n`` on the
    bottleneck node — Kafka's cost is independent of the orderer count
    (brokers do the fan-out), while BFT consensus pays O(n) work per node
    per transaction (the O(n^2) message complexity divided over n nodes).
    Constants fit the two anchors the paper reports: ~3000 tps at small n
    and ~650 tps at 32 orderers for BFT.
    """

    per_tx_base: float
    per_tx_per_orderer: float

    def capacity(self, orderer_count: int) -> float:
        return 1.0 / (self.per_tx_base
                      + self.per_tx_per_orderer * orderer_count)


KAFKA_ORDERER_MODEL = OrdererThroughputModel(
    per_tx_base=1.0 / 3050.0, per_tx_per_orderer=2.0e-7)

BFT_ORDERER_MODEL = OrdererThroughputModel(
    per_tx_base=1.61e-4, per_tx_per_orderer=4.31e-5)
