"""repro — a blockchain relational database.

A from-scratch Python reproduction of "Blockchain Meets Database: Design
and Implementation of a Blockchain Relational Database" (Nathan et al.,
VLDB 2019): a permissioned network of mutually distrustful organizations,
each running a replica of an MVCC relational database, with block ordering
by pluggable consensus and serializability enforced by (block-aware)
serializable snapshot isolation.

Quickstart::

    from repro import BlockchainNetwork

    net = BlockchainNetwork(
        organizations=["org1", "org2", "org3"],
        flow="execute-order",
        schema_sql="CREATE TABLE kv (k TEXT PRIMARY KEY, v INT);",
        contracts=[
            "CREATE FUNCTION set_kv(key TEXT, val INT) RETURNS VOID AS "
            "$$ BEGIN INSERT INTO kv (k, v) VALUES (key, val); END $$"
        ])
    alice = net.register_client("alice", "org1")
    result = alice.invoke_and_wait("set_kv", "answer", 42)
    assert result["status"] == "committed"
    print(alice.query("SELECT v FROM kv WHERE k = 'answer'").rows)
"""

from repro.chain import Block, ProcedureCall, Transaction, new_call
from repro.core.client import BlockchainClient
from repro.core.network import BlockchainNetwork
from repro.core.provenance import ProvenanceAuditor
from repro.errors import (
    ContractAborted,
    DeterminismViolation,
    ReproError,
    SerializationFailure,
)
from repro.node.backend import FLOW_EXECUTE_ORDER, FLOW_ORDER_EXECUTE

__version__ = "1.0.0"

__all__ = [
    "Block", "ProcedureCall", "Transaction", "new_call",
    "BlockchainClient", "BlockchainNetwork", "ProvenanceAuditor",
    "ContractAborted", "DeterminismViolation", "ReproError",
    "SerializationFailure", "FLOW_EXECUTE_ORDER", "FLOW_ORDER_EXECUTE",
    "__version__",
]
